//! Planner-driven placement.
//!
//! Before executing a batch, a worker consults the `ndft_sched` planner
//! over the measured CPU-NDP machine model ([`MeasuredTimer`] over
//! [`CpuNdpMachine`]) to pick a CPU-vs-NDP placement per pipeline stage.
//! The decision also carries both pinned baselines, so callers can verify
//! the planner never loses to a CPU-only run — the service-level analogue
//! of the paper's §IV-A guarantee.

use ndft_core::{calib, CpuNdpMachine, MeasuredTimer, ModelConstants};
use ndft_dft::TaskGraph;
use ndft_sched::{plan_chain, plan_exhaustive, plan_greedy, plan_pinned, Plan, StageTimer, Target};
use serde::{Deserialize, Serialize};

/// Which planner a worker consults per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The NDFT mechanism: optimal chain DP ([`plan_chain`]).
    CostAware,
    /// Per-stage argmin ignoring boundary costs ([`plan_greedy`]).
    Greedy,
    /// Brute force over all placements ([`plan_exhaustive`]); falls back
    /// to the chain DP beyond its 24-stage guard.
    Exhaustive,
    /// Everything on the host CPU (baseline).
    CpuPinned,
    /// Everything on the NDP side (baseline).
    NdpPinned,
}

impl PlacementPolicy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PlacementPolicy::CostAware => "cost-aware",
            PlacementPolicy::Greedy => "greedy",
            PlacementPolicy::Exhaustive => "exhaustive",
            PlacementPolicy::CpuPinned => "cpu-pinned",
            PlacementPolicy::NdpPinned => "ndp-pinned",
        }
    }
}

/// A placement plan plus the context needed to judge it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Policy that produced the plan.
    pub policy: PlacementPolicy,
    /// The chosen placement with its predicted cost split.
    pub plan: Plan,
    /// Modeled time of the CPU-pinned baseline, seconds.
    pub cpu_pinned_time: f64,
    /// Modeled time of the NDP-pinned baseline, seconds.
    pub ndp_pinned_time: f64,
    /// Modeled busy time the plan puts on the host CPU, seconds.
    pub cpu_busy: f64,
    /// Modeled busy time the plan puts on the NDP stacks, seconds.
    pub ndp_busy: f64,
}

impl PlacementDecision {
    /// End-to-end modeled time of the chosen plan, seconds.
    pub fn modeled_time(&self) -> f64 {
        self.plan.total_time()
    }

    /// Speedup of the plan over the CPU-pinned baseline (>1 = faster).
    pub fn speedup_vs_cpu(&self) -> f64 {
        if self.modeled_time() == 0.0 {
            1.0
        } else {
            self.cpu_pinned_time / self.modeled_time()
        }
    }

    /// Stages placed on the NDP side.
    pub fn ndp_stage_count(&self) -> usize {
        self.plan
            .placement
            .iter()
            .filter(|t| **t == Target::Ndp)
            .count()
    }
}

/// The measured-machine timer placement decisions are made against
/// (the paper's Table III system with its measured calibration).
pub fn measured_timer() -> MeasuredTimer {
    MeasuredTimer::new(CpuNdpMachine::new(
        calib::system_config(),
        calib::measured(),
        ModelConstants::paper_default(),
    ))
}

/// Consults the planner selected by `policy` for one task graph.
pub fn plan_placement(graph: &TaskGraph, policy: PlacementPolicy) -> PlacementDecision {
    let timer = measured_timer();
    plan_placement_with(graph, policy, &timer)
}

/// [`plan_placement`] against an explicit timer (tests inject the static
/// code analyzer here to cross-check against the measured machine).
pub fn plan_placement_with(
    graph: &TaskGraph,
    policy: PlacementPolicy,
    timer: &dyn StageTimer,
) -> PlacementDecision {
    let stages = &graph.stages;
    let plan = match policy {
        PlacementPolicy::CostAware => plan_chain(stages, timer),
        PlacementPolicy::Greedy => plan_greedy(stages, timer),
        PlacementPolicy::Exhaustive => {
            if stages.len() <= 24 {
                plan_exhaustive(stages, timer)
            } else {
                plan_chain(stages, timer)
            }
        }
        PlacementPolicy::CpuPinned => plan_pinned(stages, Target::Cpu, timer),
        PlacementPolicy::NdpPinned => plan_pinned(stages, Target::Ndp, timer),
    };
    let cpu_pinned_time = plan_pinned(stages, Target::Cpu, timer).total_time();
    let ndp_pinned_time = plan_pinned(stages, Target::Ndp, timer).total_time();
    let (mut cpu_busy, mut ndp_busy) = (0.0, 0.0);
    for (stage, &target) in stages.iter().zip(&plan.placement) {
        let t = timer.stage_time(stage, target);
        match target {
            Target::Cpu => cpu_busy += t,
            Target::Ndp => ndp_busy += t,
        }
    }
    PlacementDecision {
        policy,
        plan,
        cpu_pinned_time,
        ndp_pinned_time,
        cpu_busy,
        ndp_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndft_dft::{build_task_graph, SiliconSystem};

    fn graph(atoms: usize) -> TaskGraph {
        build_task_graph(&SiliconSystem::new(atoms).unwrap(), 1)
    }

    #[test]
    fn cost_aware_never_loses_to_cpu_pinned() {
        for atoms in [16usize, 64, 256, 1024] {
            let d = plan_placement(&graph(atoms), PlacementPolicy::CostAware);
            assert!(
                d.modeled_time() <= d.cpu_pinned_time + 1e-12,
                "Si_{atoms}: {} vs cpu {}",
                d.modeled_time(),
                d.cpu_pinned_time
            );
            assert!(d.modeled_time() <= d.ndp_pinned_time + 1e-12);
        }
    }

    #[test]
    fn busy_split_sums_to_compute_time() {
        let d = plan_placement(&graph(64), PlacementPolicy::CostAware);
        let sum = d.cpu_busy + d.ndp_busy;
        assert!(
            (sum - d.plan.compute_time).abs() < 1e-9 * d.plan.compute_time.max(1e-12),
            "{sum} vs {}",
            d.plan.compute_time
        );
    }

    #[test]
    fn pinned_policies_use_one_side() {
        let cpu = plan_placement(&graph(64), PlacementPolicy::CpuPinned);
        assert_eq!(cpu.ndp_stage_count(), 0);
        assert_eq!(cpu.ndp_busy, 0.0);
        let ndp = plan_placement(&graph(64), PlacementPolicy::NdpPinned);
        assert_eq!(ndp.ndp_stage_count(), ndp.plan.placement.len());
        assert_eq!(ndp.cpu_busy, 0.0);
    }

    #[test]
    fn exhaustive_matches_cost_aware_on_chains() {
        // The LR-TDDFT pipeline is a chain, so the DP is optimal and the
        // brute-force search cannot beat it.
        let g = graph(64);
        let dp = plan_placement(&g, PlacementPolicy::CostAware);
        let ex = plan_placement(&g, PlacementPolicy::Exhaustive);
        let rel = (dp.modeled_time() - ex.modeled_time()).abs() / ex.modeled_time().max(1e-12);
        assert!(
            rel < 1e-9,
            "dp {} ex {}",
            dp.modeled_time(),
            ex.modeled_time()
        );
    }

    #[test]
    fn large_systems_favor_hybrid_placement() {
        let d = plan_placement(&graph(1024), PlacementPolicy::CostAware);
        assert!(d.speedup_vs_cpu() > 1.2, "speedup {}", d.speedup_vs_cpu());
        let n = d.ndp_stage_count();
        assert!(
            n > 0 && n < d.plan.placement.len(),
            "hybrid expected, got {n}"
        );
    }
}
