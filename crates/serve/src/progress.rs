//! Per-job lifecycle progress streaming.
//!
//! Workers (and the submission path) publish a [`ProgressEvent`] on
//! every job state transition — `Queued` → `Planned` → `Running` →
//! `Done`, including the cache-hit short-circuits and the panic/shutdown
//! failure paths — into a **bounded, drop-oldest** ring shared by the
//! whole engine. Frontends subscribe with [`crate::DftService::progress`]
//! and render live placement decisions without ever touching the
//! aggregate [`crate::ServeReport`].
//!
//! The ring never applies backpressure to workers: publishing into a
//! full ring evicts the *oldest* event and counts it (surfaced as
//! [`crate::ServeReport::progress_events_dropped`] and
//! [`ProgressStream::dropped`]). A slow or absent consumer therefore
//! costs a bounded amount of memory and zero worker stalls — the
//! freshest events always win, which is the right bias for a live view.
//! Gaps are detectable: every event carries a monotone `seq` assigned at
//! publish time.
//!
//! [`ProgressStream`] handles are cheap clones of one shared ring and
//! consume **destructively**: two streams draining the same engine split
//! the events between them (shard your consumers, or keep one).
//!
//! Publishing is **subscriber-gated**: while no `ProgressStream` handle
//! is alive, workers skip the ring entirely (one relaxed atomic load
//! per transition — nothing is stored, counted, or locked), so engines
//! nobody watches pay effectively nothing for the feature. When the
//! last handle drops, undelivered events are discarded, so every
//! subscription window starts clean: subscribe before submitting to
//! observe full lifecycles.

use crate::fingerprint::Fingerprint;
use crate::placement::PlacementDecision;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One job's position in its lifecycle.
#[derive(Debug, Clone)]
pub enum JobStage {
    /// Accepted by [`crate::DftService::submit`] and parked on a queue
    /// shard.
    Queued {
        /// The shard the class-keyed routing chose.
        shard: usize,
    },
    /// A worker consulted the planner for the job's batch; the job will
    /// execute under this placement. Boxed so the common events stay
    /// small.
    Planned {
        /// The (possibly load-shifted) placement decision.
        placement: Box<PlacementDecision>,
    },
    /// Execution of the real numerics began on a worker.
    Running,
    /// The job's ticket was fulfilled.
    Done {
        /// Whether the job produced a result (vs. an error/panic/shutdown).
        ok: bool,
        /// Whether the result came from the cache or in-batch dedup
        /// rather than a fresh execution.
        cached: bool,
    },
    /// The job was cancelled while queued; a dispatcher consumed its
    /// tombstone instead of executing it. Terminal, like `Done`.
    Cancelled,
}

impl JobStage {
    /// Short label for logs and tables.
    pub fn label(&self) -> &'static str {
        match self {
            JobStage::Queued { .. } => "queued",
            JobStage::Planned { .. } => "planned",
            JobStage::Running => "running",
            JobStage::Done { .. } => "done",
            JobStage::Cancelled => "cancelled",
        }
    }
}

/// One published lifecycle transition.
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// Monotone sequence number assigned at publish time. Consecutive
    /// events from one stream with a gap in `seq` mean the ring dropped
    /// events in between.
    pub seq: u64,
    /// The job the transition belongs to (its cache key / identity).
    pub fingerprint: Fingerprint,
    /// The transition itself.
    pub stage: JobStage,
}

struct RingState {
    events: VecDeque<ProgressEvent>,
    next_seq: u64,
    closed: bool,
}

/// The engine-owned ring; public API goes through [`ProgressStream`].
pub(crate) struct ProgressBus {
    state: Mutex<RingState>,
    not_empty: Condvar,
    capacity: usize,
    dropped: AtomicU64,
    /// Live [`ProgressStream`] handles. Publishing is a lock-free no-op
    /// at zero subscribers, so an engine nobody is watching pays one
    /// relaxed atomic load per transition instead of a mutex round-trip
    /// (and nothing accumulates or "drops" unread).
    subscribers: AtomicUsize,
}

impl ProgressBus {
    /// Ring holding at most `capacity` undelivered events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "progress capacity must be positive");
        ProgressBus {
            state: Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
            dropped: AtomicU64::new(0),
            subscribers: AtomicUsize::new(0),
        }
    }

    /// Publishes one transition; evicts the oldest event (counted) when
    /// the ring is full. Never blocks, and skips all work while no
    /// [`ProgressStream`] subscriber exists — a subscriber attaching
    /// mid-run sees events from that point on (same contract as joining
    /// a drop-oldest ring late).
    pub(crate) fn publish(&self, fingerprint: Fingerprint, stage: JobStage) {
        if self.subscribers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut st = self.state.lock().unwrap();
        // Re-check under the lock: subscriber attach/detach (and the
        // detach-time clear) are serialized by this mutex, so an event
        // can never be appended after the last subscriber's clear.
        if self.subscribers.load(Ordering::Relaxed) == 0 {
            return;
        }
        if st.events.len() == self.capacity {
            st.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.events.push_back(ProgressEvent {
            seq,
            fingerprint,
            stage,
        });
        drop(st);
        self.not_empty.notify_one();
    }

    /// True while at least one [`ProgressStream`] handle is alive.
    /// Workers check this before *constructing* expensive events (the
    /// `Planned` placement clone), not just before publishing them.
    pub(crate) fn has_subscribers(&self) -> bool {
        self.subscribers.load(Ordering::Relaxed) > 0
    }

    /// Marks the engine shut down: buffered events still drain, then
    /// blocking consumers observe the end of the stream (`None`).
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Events evicted unread so far (monotone).
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Consumer handle over the engine's progress ring.
///
/// Obtained from [`crate::DftService::progress`]. Clones share one ring
/// and consume destructively (see the [module docs](self)). The engine
/// only publishes while at least one handle is alive — subscribe
/// *before* submitting to observe full lifecycles.
pub struct ProgressStream {
    bus: Arc<ProgressBus>,
}

impl ProgressStream {
    pub(crate) fn new(bus: Arc<ProgressBus>) -> Self {
        // Under the state lock so attach cannot interleave with a
        // departing last subscriber's ring clear.
        let _st = bus.state.lock().unwrap();
        bus.subscribers.fetch_add(1, Ordering::Relaxed);
        drop(_st);
        ProgressStream { bus }
    }

    /// Next event without blocking; `None` when the ring is currently
    /// empty (the engine may still be running).
    pub fn try_next(&self) -> Option<ProgressEvent> {
        self.bus.state.lock().unwrap().events.pop_front()
    }

    /// Blocks for the next event; `None` only once the engine has shut
    /// down **and** the ring is drained (end of stream).
    pub fn next(&self) -> Option<ProgressEvent> {
        let mut st = self.bus.state.lock().unwrap();
        loop {
            if let Some(event) = st.events.pop_front() {
                return Some(event);
            }
            if st.closed {
                return None;
            }
            st = self.bus.not_empty.wait(st).unwrap();
        }
    }

    /// [`ProgressStream::next`] with a fixed deadline `timeout` from
    /// now; `None` on timeout or end of stream (spurious wakeups do not
    /// extend the deadline).
    pub fn next_timeout(&self, timeout: Duration) -> Option<ProgressEvent> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.bus.state.lock().unwrap();
        loop {
            if let Some(event) = st.events.pop_front() {
                return Some(event);
            }
            if st.closed {
                return None;
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _res) = self.bus.not_empty.wait_timeout(st, remaining).unwrap();
            st = guard;
        }
    }

    /// Takes everything currently buffered, without blocking.
    pub fn drain(&self) -> Vec<ProgressEvent> {
        let mut st = self.bus.state.lock().unwrap();
        st.events.drain(..).collect()
    }

    /// Events currently buffered (undelivered).
    pub fn len(&self) -> usize {
        self.bus.state.lock().unwrap().events.len()
    }

    /// True when nothing is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted unread over the engine's lifetime (the same
    /// counter [`crate::ServeReport::progress_events_dropped`] reports).
    pub fn dropped(&self) -> u64 {
        self.bus.dropped()
    }
}

impl Clone for ProgressStream {
    fn clone(&self) -> Self {
        ProgressStream::new(Arc::clone(&self.bus))
    }
}

impl Drop for ProgressStream {
    fn drop(&mut self) {
        let mut st = self.bus.state.lock().unwrap();
        if self.bus.subscribers.fetch_sub(1, Ordering::Relaxed) == 1 {
            // Last subscriber out: discard undelivered events so a later
            // subscriber starts clean instead of reading a stale window
            // (uncounted — nothing was dropped on a *watched* engine).
            st.events.clear();
        }
    }
}

impl std::fmt::Debug for ProgressStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressStream")
            .field("buffered", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn publishes_in_order_with_monotone_seq() {
        let bus = Arc::new(ProgressBus::new(8));
        let stream = ProgressStream::new(Arc::clone(&bus));
        bus.publish(fp(1), JobStage::Queued { shard: 0 });
        bus.publish(fp(1), JobStage::Running);
        bus.publish(
            fp(1),
            JobStage::Done {
                ok: true,
                cached: false,
            },
        );
        let events = stream.drain();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(events[0].stage.label(), "queued");
        assert_eq!(events[2].stage.label(), "done");
        assert_eq!(stream.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let bus = Arc::new(ProgressBus::new(2));
        let stream = ProgressStream::new(Arc::clone(&bus));
        for i in 0..5u128 {
            bus.publish(fp(i), JobStage::Running);
        }
        assert_eq!(stream.dropped(), 3);
        let events = stream.drain();
        assert_eq!(events.len(), 2);
        // The freshest events survive; seq exposes the gap.
        assert_eq!(events[0].fingerprint, fp(3));
        assert_eq!(events[1].fingerprint, fp(4));
        assert_eq!(events[0].seq, 3);
    }

    #[test]
    fn blocking_next_wakes_on_publish_and_ends_on_close() {
        let bus = Arc::new(ProgressBus::new(4));
        let stream = ProgressStream::new(Arc::clone(&bus));
        let consumer = {
            let stream = stream.clone();
            thread::spawn(move || {
                let first = stream.next();
                let end = stream.next();
                (first, end)
            })
        };
        thread::sleep(Duration::from_millis(10));
        bus.publish(fp(7), JobStage::Running);
        thread::sleep(Duration::from_millis(10));
        bus.close();
        let (first, end) = consumer.join().unwrap();
        assert_eq!(first.unwrap().fingerprint, fp(7));
        assert!(end.is_none(), "closed + drained ⇒ end of stream");
    }

    #[test]
    fn publishing_without_subscribers_is_a_gated_no_op() {
        let bus = Arc::new(ProgressBus::new(4));
        bus.publish(fp(1), JobStage::Running); // nobody listening: skipped
        let stream = ProgressStream::new(Arc::clone(&bus));
        assert!(stream.is_empty(), "pre-subscription event was not stored");
        bus.publish(fp(2), JobStage::Running);
        assert_eq!(stream.len(), 1);
        let clone = stream.clone();
        drop(stream);
        bus.publish(fp(3), JobStage::Running); // clone keeps the bus live
        assert_eq!(clone.drain().len(), 2);
        drop(clone);
        bus.publish(fp(4), JobStage::Running); // last handle gone: skipped
        assert_eq!(bus.dropped(), 0);
        let late = ProgressStream::new(bus);
        assert!(late.is_empty(), "nothing published while unsubscribed");
    }

    #[test]
    fn last_unsubscribe_clears_undelivered_events() {
        let bus = Arc::new(ProgressBus::new(8));
        let stream = ProgressStream::new(Arc::clone(&bus));
        bus.publish(fp(1), JobStage::Running);
        bus.publish(fp(2), JobStage::Running);
        drop(stream); // last subscriber out with 2 events undelivered
        let late = ProgressStream::new(bus);
        assert!(
            late.is_empty(),
            "a new subscription window must not see stale events"
        );
        assert_eq!(late.dropped(), 0, "clearing is not counted as drops");
    }

    #[test]
    fn next_timeout_expires_without_events() {
        let bus = Arc::new(ProgressBus::new(4));
        let stream = ProgressStream::new(bus);
        assert!(stream.next_timeout(Duration::from_millis(10)).is_none());
    }
}
