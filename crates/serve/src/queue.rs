//! Bounded submission queues with backpressure.
//!
//! Two structures live here:
//!
//! * [`BoundedQueue`] — the original mutex-and-condvar MPMC queue, kept
//!   as a single-lane primitive (and as the `shards = 1` mental model).
//! * [`ShardedQueue`] — N independent bounded shards keyed by a caller
//!   hash (the engine uses the [`crate::WorkloadClass`] shard key), plus
//!   the work-stealing protocol the dispatcher runs: consumers drain a
//!   *home* shard and, when it is empty, steal the largest batchable run
//!   (the most common key) from the most-loaded victim shard.
//!
//! Each shard holds one FIFO *lane* per [`crate::Priority`]. Both home
//! drains and steals pick the highest-priority nonempty lane, with an
//! aging escape hatch: a nonempty lane passed over [`LANE_AGING_LIMIT`]
//! times is served next regardless of priority, so interactive work
//! preempts bulk without ever starving it.
//!
//! Producers see [`SubmitError::QueueFull`] from the `try_push` entry
//! points when the service is saturated (the backpressure signal), or
//! block in `push`; consumers drain up to a batch-sized chunk at a time
//! so the batcher has material to group.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::job::TenantId;

/// Number of priority lanes per shard — one per [`crate::Priority`].
pub const PRIORITY_LANES: usize = 3;

/// Lane index `try_push`/`push` route to (the standard-priority lane).
pub const DEFAULT_LANE: usize = 1;

/// How many times a nonempty lane may be passed over by lane selection
/// before it is served unconditionally. Bounds the service gap of any
/// queued item: a nonempty lane is drained from at least once in every
/// `LANE_AGING_LIMIT + PRIORITY_LANES` dispatches against its shard.
pub const LANE_AGING_LIMIT: u32 = 4;

/// Why a submission was rejected.
///
/// Marked `#[non_exhaustive]`: the QoS layer grows admission verdicts
/// over time, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The bounded queue is at capacity — back off and retry.
    QueueFull,
    /// The engine is shutting down; no further jobs are accepted.
    Closed,
    /// The job can never run (e.g. an impossible atom count); rejected
    /// before queueing.
    InvalidJob(String),
    /// Admission control rejected the request: the modeled queue wait
    /// plus modeled run time already overruns the requested deadline, so
    /// queueing the job would only waste a slot.
    AdmissionDenied {
        /// Modeled completion time from now, seconds (queue wait + run).
        modeled_finish_s: f64,
        /// The deadline the request asked for, seconds.
        deadline_s: f64,
    },
    /// The tenant is at its in-flight quota; the job was not queued.
    QuotaExceeded {
        /// The tenant whose quota is exhausted.
        tenant: TenantId,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => {
                f.write_str("submission queue is full — back off and retry, or use submit_blocking")
            }
            SubmitError::Closed => {
                f.write_str("engine is shut down — no further submissions will be accepted")
            }
            SubmitError::InvalidJob(why) => {
                write!(
                    f,
                    "invalid job: {why} — fix the request; retrying cannot succeed"
                )
            }
            SubmitError::AdmissionDenied {
                modeled_finish_s,
                deadline_s,
            } => write!(
                f,
                "admission denied: modeled finish {modeled_finish_s:.3}s overruns the \
                 {deadline_s:.3}s deadline — relax the deadline, or resubmit when load drops"
            ),
            SubmitError::QuotaExceeded { tenant } => write!(
                f,
                "{tenant} is at its in-flight quota — wait for its queued jobs to finish, \
                 or raise ServeConfig::tenant_quota"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; the backpressure-aware entry point.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Closed`]
    /// after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space instead of failing.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if the queue closes while waiting.
    pub fn push(&self, item: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Pops up to `max` items, blocking until at least one is available
    /// or the queue is closed and drained (then `None`).
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max.max(1));
                let batch: Vec<T> = st.items.drain(..n).collect();
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Like [`BoundedQueue::pop_batch`] but gives up at a fixed deadline
    /// `timeout` from now (spurious or raced wakeups do not extend it).
    pub fn pop_batch_timeout(&self, max: usize, timeout: Duration) -> Option<Vec<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max.max(1));
                let batch: Vec<T> = st.items.drain(..n).collect();
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _res) = self.not_empty.wait_timeout(st, remaining).unwrap();
            st = guard;
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

/// A run of same-key items stolen from a victim shard.
#[derive(Debug)]
pub struct StolenRun<T> {
    /// Shard the run was taken from.
    pub from_shard: usize,
    /// Shard key shared by every stolen item.
    pub key: u64,
    /// The items, in their original queue order.
    pub items: Vec<T>,
}

struct ShardInner<T> {
    /// One FIFO per priority, indexed by [`crate::Priority::index`].
    lanes: [VecDeque<(u64, T)>; PRIORITY_LANES],
    /// Times each nonempty lane has been passed over by lane selection
    /// since it was last served; at [`LANE_AGING_LIMIT`] the lane jumps
    /// the priority order (the anti-starvation clock).
    passed: [u32; PRIORITY_LANES],
}

impl<T> ShardInner<T> {
    /// Total items across every lane (the depth the mirror publishes).
    fn total(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Picks the lane the next dispatch serves and advances the aging
    /// clocks: an aged nonempty lane wins outright, otherwise the
    /// highest-priority nonempty lane does; every other nonempty lane
    /// records one more pass-over. `None` when the shard is empty.
    fn choose_lane(&mut self) -> Option<usize> {
        let aged = (0..PRIORITY_LANES)
            .find(|&l| !self.lanes[l].is_empty() && self.passed[l] >= LANE_AGING_LIMIT);
        let chosen = aged.or_else(|| (0..PRIORITY_LANES).find(|&l| !self.lanes[l].is_empty()))?;
        for l in 0..PRIORITY_LANES {
            if l != chosen && !self.lanes[l].is_empty() {
                self.passed[l] = self.passed[l].saturating_add(1);
            }
        }
        self.passed[chosen] = 0;
        Some(chosen)
    }
}

struct Shard<T> {
    state: Mutex<ShardInner<T>>,
    not_full: Condvar,
    /// Lock-free depth mirror so victim selection never takes a lock.
    depth: AtomicUsize,
    /// Highest depth this shard ever reached (telemetry: how close each
    /// lane came to its backpressure ceiling over the engine's life).
    high_watermark: AtomicUsize,
}

impl<T> Shard<T> {
    fn new(capacity: usize) -> Self {
        Shard {
            state: Mutex::new(ShardInner {
                lanes: std::array::from_fn(|_| VecDeque::with_capacity(capacity)),
                passed: [0; PRIORITY_LANES],
            }),
            not_full: Condvar::new(),
            depth: AtomicUsize::new(0),
            high_watermark: AtomicUsize::new(0),
        }
    }

    /// Publishes a new depth, folding it into the high-watermark.
    fn set_depth(&self, depth: usize) {
        self.depth.store(depth, Ordering::Release);
        self.high_watermark.fetch_max(depth, Ordering::AcqRel);
    }
}

/// N independent bounded shards plus the work-stealing protocol.
///
/// Producers route by a caller-supplied shard key (the engine hashes the
/// [`crate::WorkloadClass`], so one class — hence one planner
/// consultation — lands on one shard) and by priority lane (the `_at`
/// entry points; the plain ones use [`DEFAULT_LANE`]). Consumers own a
/// home shard, drain it in batches with [`ShardedQueue::try_pop_home`],
/// and fall back to [`ShardedQueue::try_steal`]: pick the most-loaded
/// victim shard and take its largest same-key run, so a stolen chunk is
/// still batchable under a single plan. Both dispatch paths serve the
/// highest-priority nonempty lane, subject to the shared aging clock
/// (see [`LANE_AGING_LIMIT`]).
///
/// Consumers never block inside the queue; they poll the two `try_*`
/// entry points and park in [`ShardedQueue::wait_for_work`] between
/// rounds (the generation token closes the lost-wakeup race).
pub struct ShardedQueue<T> {
    shards: Vec<Shard<T>>,
    capacity_per_shard: usize,
    closed: AtomicBool,
    /// Bumped on every push and on close; consumers compare it against
    /// their pre-scan token. Lock-free so the push hot path never
    /// serializes on a global mutex.
    work_generation: AtomicU64,
    /// Companion mutex for `work_available` only — producers take it
    /// empty-handed around the notify so a parked consumer can't miss a
    /// bump between its generation check and its wait.
    park: Mutex<()>,
    work_available: Condvar,
}

impl<T> ShardedQueue<T> {
    /// Queue with `shards` lanes sharing `total_capacity` slots (split
    /// evenly, rounded up, at least one per shard).
    ///
    /// # Panics
    ///
    /// Panics on zero shards or zero capacity.
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert!(total_capacity > 0, "queue capacity must be positive");
        let capacity_per_shard = total_capacity.div_ceil(shards);
        ShardedQueue {
            shards: (0..shards)
                .map(|_| Shard::new(capacity_per_shard))
                .collect(),
            capacity_per_shard,
            closed: AtomicBool::new(false),
            work_generation: AtomicU64::new(0),
            park: Mutex::new(()),
            work_available: Condvar::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Bounded capacity of one shard.
    pub fn capacity_per_shard(&self) -> usize {
        self.capacity_per_shard
    }

    /// The shard a key routes to.
    pub fn shard_for(&self, key: u64) -> usize {
        (key % self.shards.len() as u64) as usize
    }

    /// Total items queued across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Acquire))
            .sum()
    }

    /// True when every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard depth snapshot (index = shard).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.depth.load(Ordering::Acquire))
            .collect()
    }

    /// Highest depth each shard ever reached (index = shard) — a
    /// monotone gauge of how close each lane came to its backpressure
    /// ceiling, exported on [`crate::TelemetrySnapshot`].
    pub fn shard_high_watermarks(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.high_watermark.load(Ordering::Acquire))
            .collect()
    }

    /// One push ⇒ one item ⇒ one woken consumer. The empty critical
    /// section orders the bump against any parked consumer's
    /// check-then-wait; `notify_all` would stampede every idle worker
    /// into a full shard scan for a single item.
    fn bump_work_generation(&self) {
        self.work_generation.fetch_add(1, Ordering::Release);
        drop(self.park.lock().unwrap());
        self.work_available.notify_one();
    }

    /// Token for [`ShardedQueue::wait_for_work`]: read it *before*
    /// scanning the shards, and the wait becomes a no-op if any push
    /// landed since.
    pub fn generation(&self) -> u64 {
        self.work_generation.load(Ordering::Acquire)
    }

    /// Parks until a push (or close) bumps the generation past `seen`,
    /// or `timeout` elapses. Returns true when new work may exist.
    pub fn wait_for_work(&self, seen: u64, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.park.lock().unwrap();
        while self.work_generation.load(Ordering::Acquire) == seen {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return false;
            };
            let (g, _res) = self.work_available.wait_timeout(guard, remaining).unwrap();
            guard = g;
        }
        true
    }

    /// Non-blocking keyed push to the [`DEFAULT_LANE`]; the
    /// backpressure-aware entry point.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the target shard is at capacity,
    /// [`SubmitError::Closed`] after [`ShardedQueue::close`] — the
    /// rejected item rides back with the error, so the caller decides
    /// its fate (retry, fail its ticket, drop) instead of the queue
    /// silently destroying it.
    pub fn try_push(&self, key: u64, item: T) -> Result<(), (T, SubmitError)> {
        self.try_push_at(key, DEFAULT_LANE, item)
    }

    /// Non-blocking keyed push into priority lane `lane` (a
    /// [`crate::Priority::index`]). Capacity is shared across every lane
    /// of the shard, so a bulk flood exerts backpressure on everyone —
    /// admission, not the queue, is where priorities buy headroom.
    ///
    /// # Errors
    ///
    /// As [`ShardedQueue::try_push`].
    ///
    /// # Panics
    ///
    /// Panics when `lane >= PRIORITY_LANES`.
    pub fn try_push_at(&self, key: u64, lane: usize, item: T) -> Result<(), (T, SubmitError)> {
        assert!(lane < PRIORITY_LANES, "lane out of range");
        if self.closed.load(Ordering::Acquire) {
            return Err((item, SubmitError::Closed));
        }
        let shard = &self.shards[self.shard_for(key)];
        let mut st = shard.state.lock().unwrap();
        if self.closed.load(Ordering::Acquire) {
            drop(st);
            return Err((item, SubmitError::Closed));
        }
        if st.total() >= self.capacity_per_shard {
            drop(st);
            return Err((item, SubmitError::QueueFull));
        }
        st.lanes[lane].push_back((key, item));
        shard.set_depth(st.total());
        drop(st);
        self.bump_work_generation();
        Ok(())
    }

    /// Blocking keyed push to the [`DEFAULT_LANE`]: waits for space on
    /// the target shard.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if the queue closes while waiting (the
    /// rejected item rides back with the error).
    pub fn push(&self, key: u64, item: T) -> Result<(), (T, SubmitError)> {
        self.push_at(key, DEFAULT_LANE, item)
    }

    /// Blocking keyed push into priority lane `lane`.
    ///
    /// # Errors
    ///
    /// As [`ShardedQueue::push`].
    ///
    /// # Panics
    ///
    /// Panics when `lane >= PRIORITY_LANES`.
    pub fn push_at(&self, key: u64, lane: usize, item: T) -> Result<(), (T, SubmitError)> {
        assert!(lane < PRIORITY_LANES, "lane out of range");
        let shard = &self.shards[self.shard_for(key)];
        let mut st = shard.state.lock().unwrap();
        loop {
            if self.closed.load(Ordering::Acquire) {
                drop(st);
                return Err((item, SubmitError::Closed));
            }
            if st.total() < self.capacity_per_shard {
                st.lanes[lane].push_back((key, item));
                shard.set_depth(st.total());
                drop(st);
                self.bump_work_generation();
                return Ok(());
            }
            st = shard.not_full.wait(st).unwrap();
        }
    }

    /// Drains up to `max` items from `home` without blocking. `None`
    /// when the home shard is empty (then try [`ShardedQueue::try_steal`]).
    ///
    /// The drain comes from a single lane — the one the aging-aware
    /// selection picks — so a chunk never interleaves priorities.
    pub fn try_pop_home(&self, home: usize, max: usize) -> Option<Vec<T>> {
        let shard = &self.shards[home];
        let mut st = shard.state.lock().unwrap();
        let lane = st.choose_lane()?;
        let items = &mut st.lanes[lane];
        let n = items.len().min(max.max(1));
        let batch: Vec<T> = items.drain(..n).map(|(_, item)| item).collect();
        shard.set_depth(st.total());
        drop(st);
        shard.not_full.notify_all();
        Some(batch)
    }

    /// Steals the largest batchable run — the most items sharing one
    /// key, capped at `max` — from the most-loaded shard other than
    /// `thief_home`. Victims are tried in decreasing-depth order, so a
    /// race with another thief falls through to the next candidate.
    ///
    /// The run comes from one lane of the victim, picked by the same
    /// aging-aware selection home drains use, so stealing respects both
    /// the priority order and the starvation bound.
    pub fn try_steal(&self, thief_home: usize, max: usize) -> Option<StolenRun<T>> {
        let mut candidates: Vec<(usize, usize)> = self
            .shards
            .iter()
            .enumerate()
            .filter(|&(i, s)| i != thief_home && s.depth.load(Ordering::Acquire) > 0)
            .map(|(i, s)| (i, s.depth.load(Ordering::Acquire)))
            .collect();
        candidates.sort_by_key(|&(_, depth)| std::cmp::Reverse(depth));
        for (victim, _) in candidates {
            let shard = &self.shards[victim];
            let mut st = shard.state.lock().unwrap();
            let Some(lane) = st.choose_lane() else {
                continue; // lost the race to another consumer
            };
            let items = &mut st.lanes[lane];
            // Find the key with the longest run (ties → first seen, which
            // keeps the steal deterministic for a given queue state).
            let mut best_key = items[0].0;
            let mut best_count = 0usize;
            let mut counts: Vec<(u64, usize)> = Vec::new();
            for &(key, _) in items.iter() {
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((key, 1)),
                }
            }
            for (key, count) in counts {
                if count > best_count {
                    best_key = key;
                    best_count = count;
                }
            }
            let take = best_count.min(max.max(1));
            let mut stolen = Vec::with_capacity(take);
            let mut kept = VecDeque::with_capacity(items.len() - take);
            for (key, item) in items.drain(..) {
                if key == best_key && stolen.len() < take {
                    stolen.push(item);
                } else {
                    kept.push_back((key, item));
                }
            }
            st.lanes[lane] = kept;
            shard.set_depth(st.total());
            drop(st);
            shard.not_full.notify_all();
            return Some(StolenRun {
                from_shard: victim,
                key: best_key,
                items: stolen,
            });
        }
        None
    }

    /// Empties every shard (shutdown sweep for orphaned entries), lanes
    /// in priority order within each shard.
    pub fn drain_all(&self) -> Vec<T> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let mut st = shard.state.lock().unwrap();
            for lane in 0..PRIORITY_LANES {
                all.extend(st.lanes[lane].drain(..).map(|(_, item)| item));
            }
            shard.set_depth(0);
            drop(st);
            shard.not_full.notify_all();
        }
        all
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// every blocked producer and parked consumer wakes (`notify_all` on
    /// each shard's `not_full` *and* the work condvar — a blocked
    /// `submit_blocking` caller must observe [`SubmitError::Closed`],
    /// never hang).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        for shard in &self.shards {
            // Take the lock so no producer is between its closed-check
            // and its wait when the notification fires.
            let _st = shard.state.lock().unwrap();
            shard.not_full.notify_all();
        }
        // Unlike a push (one item ⇒ one consumer), close concerns every
        // parked consumer: wake them all so they can observe shutdown.
        self.work_generation.fetch_add(1, Ordering::Release);
        drop(self.park.lock().unwrap());
        self.work_available.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_applies_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(SubmitError::QueueFull));
        assert_eq!(q.pop_batch(10), Some(vec![1, 2]));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_and_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(SubmitError::Closed));
        assert_eq!(q.pop_batch(4), Some(vec![1]));
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn blocking_push_wakes_on_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let prod = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        // Give the producer time to block, then free a slot.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(1), Some(vec![0]));
        prod.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1), Some(vec![1]));
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..50 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(4) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 200);
        all.dedup();
        assert_eq!(all.len(), 200, "every item delivered exactly once");
    }

    #[test]
    fn pop_batch_timeout_expires() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert_eq!(q.pop_batch_timeout(1, Duration::from_millis(10)), None);
    }

    #[test]
    fn close_unblocks_blocked_producer_with_closed() {
        // Regression: a producer parked in push() while the queue is full
        // must observe Closed when the queue closes, not hang forever.
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let prod = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(prod.join().unwrap(), Err(SubmitError::Closed));
    }

    #[test]
    fn sharded_routes_by_key_and_reports_depths() {
        let q: ShardedQueue<u32> = ShardedQueue::new(4, 16);
        assert_eq!(q.shards(), 4);
        assert_eq!(q.capacity_per_shard(), 4);
        q.try_push(0, 10).unwrap();
        q.try_push(0, 11).unwrap();
        q.try_push(1, 20).unwrap();
        assert_eq!(q.shard_depths(), vec![2, 1, 0, 0]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_pop_home(0, 8), Some(vec![10, 11]));
        assert_eq!(q.try_pop_home(0, 8), None);
        assert_eq!(q.try_pop_home(1, 8), Some(vec![20]));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_backpressure_is_per_shard() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 4);
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        assert_eq!(q.try_push(0, 3), Err((3, SubmitError::QueueFull)));
        // The other shard still has room.
        q.try_push(1, 4).unwrap();
    }

    #[test]
    fn steal_takes_largest_run_from_most_loaded_victim() {
        let q: ShardedQueue<u32> = ShardedQueue::new(3, 30);
        // Shard 0: key 0 × 2. Shard 1: key 1 × 3 and key 4 × 1 (4 % 3 = 1).
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        q.try_push(1, 10).unwrap();
        q.try_push(4, 40).unwrap();
        q.try_push(1, 11).unwrap();
        q.try_push(1, 12).unwrap();
        // Thief homed on shard 2: victim is shard 1 (depth 4), largest
        // run there is key 1 (3 items), stolen in order.
        let run = q.try_steal(2, 8).unwrap();
        assert_eq!(run.from_shard, 1);
        assert_eq!(run.key, 1);
        assert_eq!(run.items, vec![10, 11, 12]);
        // The off-key item survives on the victim.
        assert_eq!(q.try_pop_home(1, 8), Some(vec![40]));
        // Next steal falls through to shard 0.
        let run = q.try_steal(2, 1).unwrap();
        assert_eq!(run.from_shard, 0);
        assert_eq!(run.items, vec![1]);
    }

    #[test]
    fn steal_respects_max_and_finds_nothing_when_empty() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 8);
        assert!(q.try_steal(0, 4).is_none());
        for i in 0..4 {
            q.try_push(1, i).unwrap();
        }
        let run = q.try_steal(0, 2).unwrap();
        assert_eq!(run.items, vec![0, 1]);
        assert_eq!(q.shard_depths(), vec![0, 2]);
    }

    #[test]
    fn sharded_close_unblocks_blocked_producer_with_closed() {
        let q: Arc<ShardedQueue<u32>> = Arc::new(ShardedQueue::new(2, 2));
        q.try_push(0, 1).unwrap();
        let prod = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(0, 2))
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        // The blocked producer gets both the verdict and its item back.
        assert_eq!(prod.join().unwrap(), Err((2, SubmitError::Closed)));
        assert_eq!(q.try_push(2, 3), Err((3, SubmitError::Closed)));
        // Pending items still drain after close.
        assert_eq!(q.try_pop_home(0, 4), Some(vec![1]));
    }

    #[test]
    fn wait_for_work_generation_token_sees_racing_push() {
        let q: Arc<ShardedQueue<u32>> = Arc::new(ShardedQueue::new(1, 4));
        let seen = q.generation();
        q.try_push(0, 1).unwrap();
        // The push already bumped the generation: no parking at all.
        assert!(q.wait_for_work(seen, Duration::from_secs(5)));
        let seen = q.generation();
        assert!(
            !q.wait_for_work(seen, Duration::from_millis(10)),
            "times out idle"
        );
        // A push while parked wakes the waiter.
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.wait_for_work(seen, Duration::from_secs(5)))
        };
        thread::sleep(Duration::from_millis(20));
        q.try_push(0, 2).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn drain_all_empties_every_shard() {
        let q: ShardedQueue<u32> = ShardedQueue::new(3, 9);
        for key in 0..3u64 {
            for i in 0..2 {
                q.try_push(key, (key * 10 + i) as u32).unwrap();
            }
        }
        let mut all = q.drain_all();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 10, 11, 20, 21]);
        assert!(q.is_empty());
    }

    #[test]
    fn higher_priority_lane_preempts_lower() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 16);
        q.try_push_at(0, 2, 200).unwrap(); // bulk arrives first
        q.try_push_at(0, 1, 100).unwrap();
        q.try_push_at(0, 0, 1).unwrap(); // interactive arrives last
        assert_eq!(q.try_pop_home(0, 8), Some(vec![1]));
        assert_eq!(q.try_pop_home(0, 8), Some(vec![100]));
        assert_eq!(q.try_pop_home(0, 8), Some(vec![200]));
    }

    #[test]
    fn aging_bounds_the_service_gap_of_a_starved_lane() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 256);
        q.try_push_at(0, 2, 999).unwrap(); // the one bulk item
        for i in 0..32 {
            q.try_push_at(0, 0, i).unwrap(); // interactive flood
        }
        // With an interactive lane that never empties, the bulk item must
        // still be served within LANE_AGING_LIMIT + 1 dispatches.
        let mut pops = 0;
        loop {
            let got = q.try_pop_home(0, 1).unwrap();
            pops += 1;
            if got == vec![999] {
                break;
            }
            assert!(
                pops <= LANE_AGING_LIMIT as usize + 1,
                "bulk item starved for {pops} dispatches"
            );
        }
    }

    #[test]
    fn steal_serves_the_victims_priority_lanes_in_order() {
        let q: ShardedQueue<u32> = ShardedQueue::new(2, 16);
        q.try_push_at(0, 2, 20).unwrap();
        q.try_push_at(0, 2, 21).unwrap();
        q.try_push_at(0, 0, 5).unwrap();
        // Thief homed on shard 1: the victim's interactive lane wins even
        // though the bulk lane holds the larger run.
        let run = q.try_steal(1, 8).unwrap();
        assert_eq!(run.from_shard, 0);
        assert_eq!(run.items, vec![5]);
        let run = q.try_steal(1, 8).unwrap();
        assert_eq!(run.items, vec![20, 21]);
    }

    #[test]
    fn lanes_share_one_capacity_budget() {
        let q: ShardedQueue<u32> = ShardedQueue::new(1, 2);
        q.try_push_at(0, 0, 1).unwrap();
        q.try_push_at(0, 2, 2).unwrap();
        assert_eq!(q.try_push_at(0, 1, 3), Err((3, SubmitError::QueueFull)));
    }
}
