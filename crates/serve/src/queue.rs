//! Bounded submission queue with backpressure.
//!
//! A mutex-and-condvar MPMC queue: producers see [`SubmitError::QueueFull`]
//! from [`BoundedQueue::try_push`] when the service is saturated (the
//! backpressure signal), or block in [`BoundedQueue::push`]; consumers
//! drain up to a batch-sized chunk at a time so the batcher has material
//! to group.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity — back off and retry.
    QueueFull,
    /// The engine is shutting down; no further jobs are accepted.
    Closed,
    /// The job can never run (e.g. an impossible atom count); rejected
    /// before queueing.
    InvalidJob(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue is full"),
            SubmitError::Closed => f.write_str("engine is shut down"),
            SubmitError::InvalidJob(why) => write!(f, "invalid job: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded MPMC queue.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; the backpressure-aware entry point.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] at capacity, [`SubmitError::Closed`]
    /// after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        if st.items.len() >= self.capacity {
            return Err(SubmitError::QueueFull);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space instead of failing.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] if the queue closes while waiting.
    pub fn push(&self, item: T) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(SubmitError::Closed);
            }
            if st.items.len() < self.capacity {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Pops up to `max` items, blocking until at least one is available
    /// or the queue is closed and drained (then `None`).
    pub fn pop_batch(&self, max: usize) -> Option<Vec<T>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max.max(1));
                let batch: Vec<T> = st.items.drain(..n).collect();
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Like [`BoundedQueue::pop_batch`] but gives up at a fixed deadline
    /// `timeout` from now (spurious or raced wakeups do not extend it).
    pub fn pop_batch_timeout(&self, max: usize, timeout: Duration) -> Option<Vec<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max.max(1));
                let batch: Vec<T> = st.items.drain(..n).collect();
                drop(st);
                self.not_full.notify_all();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _res) = self.not_empty.wait_timeout(st, remaining).unwrap();
            st = guard;
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_applies_backpressure() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(SubmitError::QueueFull));
        assert_eq!(q.pop_batch(10), Some(vec![1, 2]));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_rejects_and_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(SubmitError::Closed));
        assert_eq!(q.pop_batch(4), Some(vec![1]));
        assert_eq!(q.pop_batch(4), None);
    }

    #[test]
    fn blocking_push_wakes_on_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0).unwrap();
        let prod = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1))
        };
        // Give the producer time to block, then free a slot.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop_batch(1), Some(vec![0]));
        prod.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1), Some(vec![1]));
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..50 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = q.pop_batch(4) {
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 200);
        all.dedup();
        assert_eq!(all.len(), 200, "every item delivered exactly once");
    }

    #[test]
    fn pop_batch_timeout_expires() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert_eq!(q.pop_batch_timeout(1, Duration::from_millis(10)), None);
    }
}
