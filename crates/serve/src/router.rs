//! Routing primitives for the federated service: the consistent-hash
//! ring, the deterministic fault plan, and the routing log that makes
//! replay-on-failover possible.
//!
//! # The ring
//!
//! [`HashRing`] places every replica at many pseudo-random points
//! ("virtual nodes") on a 64-bit circle; a fingerprint's **home
//! replica** is the owner of the first point at or clockwise after the
//! fingerprint's own position. Two properties follow directly from the
//! construction and are property-tested in `serve_properties.rs`:
//!
//! * **Balance** — with enough virtual nodes (≥ 64 per replica) the
//!   arcs owned by each replica even out, so key shares stay within a
//!   small factor of the mean (the test gates max/mean ≤ 1.35 at
//!   64 vnodes × 4 replicas).
//! * **Stability** — removing a replica deletes only *its* points;
//!   every fingerprint whose owning point survives keeps its home, so
//!   a failover remaps exactly the dead replica's keys and every other
//!   replica's WAL/cache tier stays warm.
//!
//! # The routing log
//!
//! [`RoutingLog`] records every accepted queued submission — the full
//! [`JobRequest`] (so replays preserve priority, deadline, and tenant),
//! the chosen replica, and both ticket halves (the client-facing ticket
//! and the current engine ticket). When a replica is killed the log is
//! the replay manifest: entries homed on the dead replica whose client
//! tickets are still unresolved are re-routed onto the surviving ring.
//! A cancellation **tombstones** its entry
//! (`RoutingLog::cancel_route`, installed as the client ticket's
//! cancel hook), so the replay path can never resurrect a cancelled
//! job — the regression `serve_integration` guards.
//!
//! The log is **self-compacting**: resolved cancellation tombstones and
//! the replay-fingerprint history are both bounded
//! ([`TOMBSTONE_CAP`] / [`REPLAY_HISTORY_CAP`]), with
//! [`RoutingLog::compact`] run amortized from the submission path —
//! a long-lived federation's memory footprint tracks its *in-flight*
//! work, not its lifetime cancel/failover history. Totals survive
//! compaction ([`RoutingLog::replayed_total`]).
//!
//! # The fault plan
//!
//! [`FaultPlan`] is the deterministic fault-injection hook: a list of
//! kill/revive actions keyed by *submission count*, applied by
//! [`crate::FederatedService`] before routing the matching submission.
//! Because the trigger is a counter rather than a timer, a test (or
//! `serve_study`'s failover leg) replays the exact same schedule on
//! every run.

use crate::fingerprint::{Fingerprint, Hasher};
use crate::job::{JobRequest, Priority, TenantId};
use crate::ticket::JobTicket;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// SplitMix64 finalizer: avalanches the FNV lane so ring points and key
/// positions disperse uniformly even over tiny, structured inputs
/// (replica indices count up from zero).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Position of one replica's `vnode`-th virtual node on the circle.
fn ring_point(replica: usize, vnode: usize) -> u64 {
    let mut h = Hasher::new();
    h.write_u64(replica as u64);
    h.write_u64(vnode as u64);
    mix64(h.finish().0 as u64)
}

/// A fingerprint's position on the circle.
fn key_position(fingerprint: Fingerprint) -> u64 {
    let mut h = Hasher::new();
    h.write_bytes(&fingerprint.to_le_bytes());
    mix64(h.finish().0 as u64)
}

/// Consistent-hash ring over replica indices, with virtual nodes for
/// balance. See the [module docs](self) for the balance and stability
/// contracts.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Points sorted by `(position, replica, vnode)` — the replica/vnode
    /// tie-break makes collisions deterministic and keeps the stability
    /// property exact even when two points share a position.
    points: Vec<(u64, usize, usize)>,
    vnodes: usize,
    replicas: Vec<usize>,
}

impl HashRing {
    /// An empty ring placing `vnodes` virtual nodes per replica
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            points: Vec::new(),
            vnodes: vnodes.max(1),
            replicas: Vec::new(),
        }
    }

    /// Virtual nodes placed per replica.
    pub fn vnodes_per_replica(&self) -> usize {
        self.vnodes
    }

    /// Live replicas, ascending.
    pub fn replicas(&self) -> &[usize] {
        &self.replicas
    }

    /// Number of live replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// True when `replica` is on the ring.
    pub fn contains(&self, replica: usize) -> bool {
        self.replicas.binary_search(&replica).is_ok()
    }

    /// Adds `replica`'s virtual nodes (no-op if already present).
    pub fn add_replica(&mut self, replica: usize) {
        let Err(at) = self.replicas.binary_search(&replica) else {
            return;
        };
        self.replicas.insert(at, replica);
        for vnode in 0..self.vnodes {
            let point = (ring_point(replica, vnode), replica, vnode);
            let at = self.points.partition_point(|p| *p < point);
            self.points.insert(at, point);
        }
    }

    /// Removes `replica`'s virtual nodes (no-op if absent). Every other
    /// replica's points are untouched — the stability property.
    pub fn remove_replica(&mut self, replica: usize) {
        if let Ok(at) = self.replicas.binary_search(&replica) {
            self.replicas.remove(at);
            self.points.retain(|&(_, r, _)| r != replica);
        }
    }

    /// The fingerprint's home replica: owner of the first point at or
    /// clockwise after the fingerprint's position (`None` on an empty
    /// ring).
    pub fn primary(&self, fingerprint: Fingerprint) -> Option<usize> {
        self.candidates(fingerprint, 1).first().copied()
    }

    /// The first `k` *distinct* replicas clockwise from the
    /// fingerprint's position, home first — the candidate set the
    /// router's least-loaded tie-break chooses from. Shorter than `k`
    /// when fewer replicas are live.
    pub fn candidates(&self, fingerprint: Fingerprint, k: usize) -> Vec<usize> {
        if self.points.is_empty() || k == 0 {
            return Vec::new();
        }
        let pos = key_position(fingerprint);
        let start = self.points.partition_point(|&(p, _, _)| p < pos);
        let mut out = Vec::with_capacity(k.min(self.replicas.len()));
        for i in 0..self.points.len() {
            let (_, replica, _) = self.points[(start + i) % self.points.len()];
            if !out.contains(&replica) {
                out.push(replica);
                if out.len() == k || out.len() == self.replicas.len() {
                    break;
                }
            }
        }
        out
    }

    /// Keys per replica for a sample of fingerprints (missing replicas
    /// report zero) — the balance property's measurement helper.
    pub fn shares(&self, keys: &[Fingerprint]) -> HashMap<usize, u64> {
        let mut shares: HashMap<usize, u64> = self.replicas.iter().map(|&r| (r, 0)).collect();
        for &key in keys {
            if let Some(home) = self.primary(key) {
                *shares.entry(home).or_insert(0) += 1;
            }
        }
        shares
    }
}

/// What a [`FaultAction`] does to its replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Abruptly stop the replica ([`crate::DftService::kill`]): queued
    /// jobs fail fast and are replayed onto the surviving ring.
    Kill,
    /// Restart the replica on its original cache directory, rejoining
    /// the ring with its disk tier warm.
    Revive,
}

/// One deterministic fault: at the `at_submission`-th federated
/// submission (1-based, counted over *attempts*), apply `event` to
/// `replica` before routing that submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// Submission count that triggers the action.
    pub at_submission: u64,
    /// The replica slot acted on.
    pub replica: usize,
    /// Kill or revive.
    pub event: FaultEvent,
}

/// A deterministic kill/revive schedule, checked by the federated
/// router before every submission. Empty by default (no faults).
///
/// ```
/// use ndft_serve::FaultPlan;
/// let plan = FaultPlan::new().kill_at(40, 1).revive_at(80, 1);
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds "kill `replica` just before the `at_submission`-th
    /// submission".
    pub fn kill_at(mut self, at_submission: u64, replica: usize) -> Self {
        self.actions.push(FaultAction {
            at_submission,
            replica,
            event: FaultEvent::Kill,
        });
        self
    }

    /// Adds "revive `replica` just before the `at_submission`-th
    /// submission".
    pub fn revive_at(mut self, at_submission: u64, replica: usize) -> Self {
        self.actions.push(FaultAction {
            at_submission,
            replica,
            event: FaultEvent::Revive,
        });
        self
    }

    /// Scheduled actions not yet fired.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Removes and returns every action due at or before `tick`,
    /// ordered by trigger point (ties keep insertion order).
    pub(crate) fn take_due(&mut self, tick: u64) -> Vec<FaultAction> {
        let mut due: Vec<FaultAction> = Vec::new();
        self.actions.retain(|a| {
            if a.at_submission <= tick {
                due.push(*a);
                false
            } else {
                true
            }
        });
        due.sort_by_key(|a| a.at_submission);
        due
    }
}

/// One accepted, still-tracked submission in the [`RoutingLog`].
pub(crate) struct RouteEntry {
    pub(crate) request: JobRequest,
    pub(crate) fingerprint: Fingerprint,
    pub(crate) replica: usize,
    /// Client-facing ticket (resolves exactly once, whatever happens to
    /// engine-side attempts).
    pub(crate) client: JobTicket,
    /// Current engine-side ticket (replaced on replay).
    pub(crate) engine: JobTicket,
    /// Times this entry was re-routed after a replica death.
    pub(crate) replays: u32,
    /// Tombstone: the client cancelled; replay must skip this entry.
    pub(crate) cancelled: bool,
    /// The home replica died and the entry awaits re-routing; the
    /// forwarder must not deliver the dead engine's `ShutDown`.
    pub(crate) replaying: bool,
}

/// Public snapshot of one routing-log entry (test and bench
/// observability; see [`crate::FederatedService::routes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteInfo {
    /// Log-assigned route id, unique per federation instance.
    pub route: u64,
    /// The job's content fingerprint.
    pub fingerprint: Fingerprint,
    /// The replica currently responsible for the job.
    pub replica: usize,
    /// Scheduling priority carried by the submission (preserved across
    /// replays).
    pub priority: Priority,
    /// Deadline carried by the submission (preserved across replays).
    pub deadline: Option<Duration>,
    /// Tenant carried by the submission (preserved across replays).
    pub tenant: TenantId,
    /// Times the entry was replayed onto a surviving replica.
    pub replays: u32,
    /// True once a cancellation tombstoned the entry.
    pub cancelled: bool,
}

/// An entry lifted out of the log for replay: the original request plus
/// the client ticket the resubmission must resolve.
pub(crate) struct ReplayItem {
    pub(crate) route: u64,
    pub(crate) request: JobRequest,
    pub(crate) client: JobTicket,
}

/// The federated router's submission ledger. See the [module
/// docs](self): every accepted queued submission is recorded here until
/// its client ticket resolves, and the log is the manifest a replica
/// kill replays from.
pub struct RoutingLog {
    entries: Mutex<HashMap<u64, RouteEntry>>,
    next_route: AtomicU64,
    /// Fingerprints re-routed after a replica death, in replay order
    /// (bounded: compaction keeps the most recent
    /// [`REPLAY_HISTORY_CAP`]).
    replayed: Mutex<Vec<Fingerprint>>,
    /// Total replays ever performed — survives history compaction.
    replayed_total: AtomicU64,
    /// Replay candidates skipped because a cancellation had tombstoned
    /// them — the count the cancel-vs-replay regression test reads.
    tombstoned_replays: AtomicU64,
    /// Amortization tick for [`RoutingLog::maybe_compact`].
    compact_ticks: AtomicU64,
}

/// Most recent replay-history fingerprints [`RoutingLog::compact`]
/// retains.
pub const REPLAY_HISTORY_CAP: usize = 1024;

/// Resolved cancellation tombstones [`RoutingLog::compact`] retains
/// (newest first by route id).
pub const TOMBSTONE_CAP: usize = 1024;

/// Submissions between amortized compaction passes.
const COMPACT_INTERVAL: u64 = 64;

impl RoutingLog {
    /// An empty log.
    pub fn new() -> Self {
        RoutingLog {
            entries: Mutex::new(HashMap::new()),
            next_route: AtomicU64::new(1),
            replayed: Mutex::new(Vec::new()),
            replayed_total: AtomicU64::new(0),
            tombstoned_replays: AtomicU64::new(0),
            compact_ticks: AtomicU64::new(0),
        }
    }

    /// Amortized [`RoutingLog::compact`]: a cheap counter bump on most
    /// calls, a real compaction pass every [`COMPACT_INTERVAL`]-th. The
    /// federated submission path calls this on every accepted issue.
    pub(crate) fn maybe_compact(&self) {
        if self
            .compact_ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(COMPACT_INTERVAL)
        {
            self.compact();
        }
    }

    /// Bounds the log's retained history: trims the replay-fingerprint
    /// list to its newest [`REPLAY_HISTORY_CAP`] entries and drops the
    /// oldest **resolved** cancellation tombstones beyond
    /// [`TOMBSTONE_CAP`]. Live (unresolved, un-cancelled) entries are
    /// never touched — they are the replay manifest. Dropping an old
    /// tombstone is safe: its client ticket already resolved
    /// `Cancelled`, and an entry absent from the log can never be
    /// replayed, so the cancel-vs-replay guarantee is preserved (the
    /// job is *forgotten*, not resurrected).
    pub fn compact(&self) {
        {
            let mut replayed = self.replayed.lock().unwrap();
            if replayed.len() > REPLAY_HISTORY_CAP {
                let excess = replayed.len() - REPLAY_HISTORY_CAP;
                replayed.drain(..excess);
            }
        }
        let mut entries = self.entries.lock().unwrap();
        let mut tombstones: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| e.cancelled && e.client.is_done())
            .map(|(&route, _)| route)
            .collect();
        if tombstones.len() > TOMBSTONE_CAP {
            tombstones.sort_unstable();
            let drop_n = tombstones.len() - TOMBSTONE_CAP;
            for route in tombstones.into_iter().take(drop_n) {
                entries.remove(&route);
            }
        }
    }

    /// Records one accepted queued submission; returns its route id.
    pub(crate) fn record(
        &self,
        request: JobRequest,
        replica: usize,
        client: JobTicket,
        engine: JobTicket,
    ) -> u64 {
        let route = self.next_route.fetch_add(1, Ordering::Relaxed);
        let fingerprint = client.fingerprint();
        self.entries.lock().unwrap().insert(
            route,
            RouteEntry {
                request,
                fingerprint,
                replica,
                client,
                engine,
                replays: 0,
                cancelled: false,
                replaying: false,
            },
        );
        route
    }

    /// Drops a settled entry (no-op when already gone).
    pub(crate) fn prune(&self, route: u64) {
        self.entries.lock().unwrap().remove(&route);
    }

    /// The cancel-hook path: tombstones the entry so replay skips it,
    /// then cancels the *current* engine-side ticket (outside the lock)
    /// so a still-queued job becomes an engine tombstone too. Without
    /// the log tombstone a replica kill could resurrect a job its
    /// client had already cancelled.
    pub(crate) fn cancel_route(&self, route: u64) {
        let engine = {
            let mut entries = self.entries.lock().unwrap();
            let Some(entry) = entries.get_mut(&route) else {
                return;
            };
            entry.cancelled = true;
            entry.engine.clone()
        };
        engine.cancel();
    }

    /// True while the entry awaits re-routing after its replica died —
    /// the forwarder's signal to swallow the dead engine's `ShutDown`.
    pub(crate) fn is_replaying(&self, route: u64) -> bool {
        self.entries
            .lock()
            .unwrap()
            .get(&route)
            .is_some_and(|e| e.replaying)
    }

    /// Phase 1 of a kill: flags every live entry homed on `replica` as
    /// replaying *before* the engine is stopped, so the shutdown
    /// sweep's `ShutDown` fulfillments are absorbed instead of
    /// delivered. Cancelled and already-resolved entries are left
    /// unflagged (their outcome stands). Returns how many were flagged.
    pub(crate) fn mark_replaying(&self, replica: usize) -> usize {
        let mut flagged = 0;
        for entry in self.entries.lock().unwrap().values_mut() {
            if entry.replica == replica && !entry.cancelled && !entry.client.is_done() {
                entry.replaying = true;
                flagged += 1;
            }
        }
        flagged
    }

    /// Phase 2 of a kill, after the engine has fully stopped (every
    /// engine ticket resolved, every forwarder fired): lifts the
    /// replayable entries homed on `replica` out for resubmission.
    /// Tombstoned entries are removed and counted instead of returned —
    /// a cancelled job is never resurrected — and entries whose client
    /// already resolved are simply dropped.
    pub(crate) fn take_replayable(&self, replica: usize) -> Vec<ReplayItem> {
        let mut entries = self.entries.lock().unwrap();
        let routes: Vec<u64> = entries
            .iter()
            .filter(|(_, e)| e.replica == replica)
            .map(|(&route, _)| route)
            .collect();
        let mut items = Vec::new();
        for route in routes {
            let entry = &entries[&route];
            if entry.cancelled {
                self.tombstoned_replays.fetch_add(1, Ordering::Relaxed);
                entries.remove(&route);
            } else if entry.client.is_done() {
                entries.remove(&route);
            } else {
                items.push(ReplayItem {
                    route,
                    request: entry.request.clone(),
                    client: entry.client.clone(),
                });
            }
        }
        items.sort_by_key(|i| i.route);
        items
    }

    /// Completes a replay: points the entry at its new replica and
    /// engine ticket, clears the replaying flag, and appends the
    /// fingerprint to the replay history.
    pub(crate) fn reroute(&self, route: u64, replica: usize, engine: JobTicket) {
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&route) {
            entry.replica = replica;
            entry.engine = engine;
            entry.replays += 1;
            entry.replaying = false;
            self.replayed.lock().unwrap().push(entry.fingerprint);
            self.replayed_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Every entry still tracked, for shutdown sweeps: `(route, client)`
    /// pairs, cancelled entries included (their clients are already
    /// resolved, so fulfilling them again is a no-op).
    pub(crate) fn drain_all(&self) -> Vec<(u64, JobTicket)> {
        let mut entries = self.entries.lock().unwrap();
        let mut out: Vec<(u64, JobTicket)> = entries
            .drain()
            .map(|(route, e)| (route, e.client))
            .collect();
        out.sort_by_key(|(route, _)| *route);
        out
    }

    /// Entries currently tracked (submitted, unresolved or tombstoned).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fingerprints replayed onto a surviving replica so far, in replay
    /// order (the failover bench's "which jobs were replayed" key).
    /// Bounded: [`RoutingLog::compact`] keeps only the newest
    /// [`REPLAY_HISTORY_CAP`]; use [`RoutingLog::replayed_total`] for
    /// the lifetime count.
    pub fn replayed(&self) -> Vec<Fingerprint> {
        self.replayed.lock().unwrap().clone()
    }

    /// Lifetime count of replays performed — unlike
    /// [`RoutingLog::replayed`], this survives history compaction.
    pub fn replayed_total(&self) -> u64 {
        self.replayed_total.load(Ordering::Relaxed)
    }

    /// Replay candidates skipped because they were tombstoned by a
    /// cancellation.
    pub fn tombstoned_replays(&self) -> u64 {
        self.tombstoned_replays.load(Ordering::Relaxed)
    }

    /// Read-only snapshot of every tracked entry, sorted by route id.
    pub fn snapshot(&self) -> Vec<RouteInfo> {
        let mut rows: Vec<RouteInfo> = self
            .entries
            .lock()
            .unwrap()
            .iter()
            .map(|(&route, e)| RouteInfo {
                route,
                fingerprint: e.fingerprint,
                replica: e.replica,
                priority: e.request.priority,
                deadline: e.request.deadline,
                tenant: e.request.tenant,
                replays: e.replays,
                cancelled: e.cancelled,
            })
            .collect();
        rows.sort_by_key(|r| r.route);
        rows
    }
}

impl Default for RoutingLog {
    fn default() -> Self {
        RoutingLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::DftJob;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    fn request(seed: u64) -> JobRequest {
        JobRequest::new(DftJob::MdSegment {
            atoms: 64,
            steps: 8,
            temperature_k: 300.0,
            seed,
        })
    }

    #[test]
    fn ring_routes_every_key_to_a_live_replica() {
        let mut ring = HashRing::new(64);
        for r in 0..4 {
            ring.add_replica(r);
        }
        for k in 0..1000u128 {
            let home = ring.primary(fp(k * 7919 + 13)).expect("non-empty ring");
            assert!(ring.contains(home));
        }
    }

    #[test]
    fn ring_balance_is_bounded_with_vnodes() {
        let mut ring = HashRing::new(64);
        for r in 0..4 {
            ring.add_replica(r);
        }
        let keys: Vec<Fingerprint> = (0..4096u128).map(|k| fp(k * 0x9E3779B9 + 1)).collect();
        let shares = ring.shares(&keys);
        let max = *shares.values().max().unwrap() as f64;
        let mean = keys.len() as f64 / shares.len() as f64;
        assert!(
            max / mean <= 1.35,
            "imbalanced ring: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn removing_a_replica_remaps_only_its_keys() {
        let mut ring = HashRing::new(64);
        for r in 0..4 {
            ring.add_replica(r);
        }
        let keys: Vec<Fingerprint> = (0..2048u128).map(|k| fp(k * 104729 + 7)).collect();
        let before: Vec<usize> = keys.iter().map(|&k| ring.primary(k).unwrap()).collect();
        ring.remove_replica(2);
        for (&key, &home) in keys.iter().zip(&before) {
            let after = ring.primary(key).unwrap();
            if home != 2 {
                assert_eq!(after, home, "stable key {key:?} moved");
            } else {
                assert_ne!(after, 2, "key still routed to the removed replica");
            }
        }
    }

    #[test]
    fn candidates_are_distinct_and_lead_with_primary() {
        let mut ring = HashRing::new(64);
        for r in 0..4 {
            ring.add_replica(r);
        }
        for k in 0..256u128 {
            let key = fp(k * 31337 + 3);
            let cands = ring.candidates(key, 3);
            assert_eq!(cands.len(), 3);
            assert_eq!(cands[0], ring.primary(key).unwrap());
            let mut dedup = cands.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), cands.len(), "duplicate candidate");
        }
    }

    #[test]
    fn fault_plan_fires_in_trigger_order_exactly_once() {
        let mut plan = FaultPlan::new().revive_at(9, 1).kill_at(3, 1).kill_at(7, 2);
        assert_eq!(plan.len(), 3);
        assert!(plan.take_due(2).is_empty());
        let due = plan.take_due(8);
        assert_eq!(
            due.iter().map(|a| a.at_submission).collect::<Vec<_>>(),
            vec![3, 7]
        );
        assert_eq!(due[0].event, FaultEvent::Kill);
        assert!(plan.take_due(8).is_empty(), "fired actions never repeat");
        assert_eq!(plan.take_due(100).len(), 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn cancelled_entries_are_tombstoned_not_replayed() {
        let log = RoutingLog::new();
        let (client_a, _ra) = JobTicket::promise(fp(1));
        let (engine_a, _ea) = JobTicket::promise(fp(1));
        let (client_b, _rb) = JobTicket::promise(fp(2));
        let (engine_b, _eb) = JobTicket::promise(fp(2));
        let a = log.record(request(1), 0, client_a.clone(), engine_a.clone());
        let _b = log.record(request(2), 0, client_b, engine_b);

        client_a.cancel();
        log.cancel_route(a);
        assert!(engine_a.is_done(), "cancel propagates to the engine ticket");

        assert_eq!(log.mark_replaying(0), 1, "tombstoned entry not flagged");
        let items = log.take_replayable(0);
        assert_eq!(items.len(), 1, "only the live entry replays");
        assert_eq!(items[0].client.fingerprint(), fp(2));
        assert_eq!(log.tombstoned_replays(), 1);
        assert_eq!(log.len(), 1, "tombstone removed, live entry retained");
    }

    #[test]
    fn reroute_updates_replica_and_history() {
        let log = RoutingLog::new();
        let (client, _r) = JobTicket::promise(fp(9));
        let (engine, _e) = JobTicket::promise(fp(9));
        let route = log.record(request(9), 3, client, engine);
        let (engine2, _e2) = JobTicket::promise(fp(9));
        log.reroute(route, 1, engine2);
        let snap = log.snapshot();
        assert_eq!(snap[0].replica, 1);
        assert_eq!(snap[0].replays, 1);
        assert_eq!(log.replayed(), vec![fp(9)]);
        assert_eq!(log.replayed_total(), 1);
        assert!(!log.is_replaying(route));
    }

    #[test]
    fn compaction_bounds_tombstones_and_replay_history() {
        let log = RoutingLog::new();
        // A long-lived federation's worth of cancellations: every entry
        // is tombstoned with its client resolved, far past the bound.
        let total = TOMBSTONE_CAP + 300;
        for i in 0..total {
            let (client, _r) = JobTicket::promise(fp(i as u128));
            let (engine, _e) = JobTicket::promise(fp(i as u128));
            let route = log.record(request(i as u64), 0, client.clone(), engine);
            client.cancel();
            log.cancel_route(route);
        }
        assert_eq!(log.len(), total, "tombstones retained until compaction");
        log.compact();
        assert_eq!(log.len(), TOMBSTONE_CAP, "resolved tombstones bounded");
        // The newest tombstones survive (route ids are monotonic).
        let snap = log.snapshot();
        assert!(snap.iter().all(|r| r.cancelled));
        assert_eq!(
            snap.first().unwrap().route,
            (total - TOMBSTONE_CAP) as u64 + 1
        );

        // Replay history: the bounded list trims to the newest entries
        // while the lifetime total survives.
        let (client, _r) = JobTicket::promise(fp(0));
        let (engine, _e) = JobTicket::promise(fp(0));
        let route = log.record(request(1), 0, client, engine);
        let replays = REPLAY_HISTORY_CAP + 50;
        for _ in 0..replays {
            let (engine2, _e2) = JobTicket::promise(fp(0));
            log.reroute(route, 1, engine2);
        }
        log.compact();
        assert_eq!(log.replayed().len(), REPLAY_HISTORY_CAP);
        assert_eq!(log.replayed_total(), replays as u64);
    }

    #[test]
    fn compaction_never_touches_live_entries() {
        let log = RoutingLog::new();
        let mut live = Vec::new();
        for i in 0..8u64 {
            let (client, r) = JobTicket::promise(fp(i as u128));
            let (engine, _e) = JobTicket::promise(fp(i as u128));
            log.record(request(i), 0, client, engine);
            live.push(r);
        }
        for _ in 0..4 {
            log.compact();
        }
        assert_eq!(log.len(), 8, "live entries are the replay manifest");
        drop(live);
    }
}
