//! The service façade: configuration, lifecycle, and submission.
//!
//! [`DftService::start`] spawns the worker pool; [`DftService::submit`]
//! is the backpressure-aware entry point (cache lookup → bounded queue);
//! [`DftService::shutdown`] drains the queue, joins the workers, and
//! returns the final [`ServeReport`].

use crate::cache::{CachePolicy, CacheStats, ResultCache};
use crate::client::{ClientSession, CompletionStream};
use crate::cluster::{ClusterSnapshot, ClusterView};
use crate::dag::{WorkflowRegistry, WorkflowSpec, WorkflowTicket};
use crate::job::{DftJob, JobRequest, Priority};
use crate::metrics::{Metrics, ServeReport};
use crate::placement::{plan_placement_loaded, PlacementPolicy};
use crate::progress::{JobStage, ProgressBus, ProgressStream};
use crate::queue::{ShardedQueue, SubmitError};
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use crate::tenant::TenantTable;
use crate::ticket::JobTicket;
use crate::trace::{TraceCollector, TraceEvent, TraceEventKind, TraceId};
use crate::worker::{worker_loop, JobOutcome, PendingJob};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queue shards. Submissions route by [`crate::WorkloadClass`] shard
    /// key, each worker homes on shard `worker % shards`, and idle
    /// workers steal batchable runs from loaded shards. `1` reproduces
    /// the old single-queue engine.
    pub shards: usize,
    /// Bounded submission-queue capacity across all shards (the
    /// backpressure knob; split evenly per shard, rounded up).
    pub queue_capacity: usize,
    /// Maximum jobs one worker drains per dispatch (the batching window).
    pub max_batch: usize,
    /// Planner the workers consult per batch.
    pub policy: PlacementPolicy,
    /// Consult the global [`ClusterView`] when planning, so concurrent
    /// batches spread across CPU/NDP targets instead of piling onto the
    /// stacks an isolated plan would pick. `false` reproduces the old
    /// load-blind engine (each batch plans as if it had the machine to
    /// itself) — the A/B knob the `serve_study` contention sweep flips.
    pub load_aware: bool,
    /// Result-cache capacity, in entries (memory tier).
    pub cache_capacity: usize,
    /// Memory-tier eviction policy. [`CachePolicy::CostWeighted`]
    /// keeps expensive results (Casida solves) through floods of cheap
    /// ones (MD segments); [`CachePolicy::Fifo`] reproduces the seed
    /// engine bit for bit — the A/B knob `serve_study` part 6 flips.
    pub cache_policy: CachePolicy,
    /// Directory for the persistent cache tier. `Some(dir)` attaches a
    /// write-ahead result log under `dir` (created if missing, scanned
    /// on start so results from prior engine instances are warm);
    /// `None` (the default) keeps the cache memory-only. One live
    /// engine per directory: the tier supports *sequential* reuse
    /// across restarts, not concurrent engines sharing a `dir` (see
    /// [`crate::persist`]).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Capacity of the bounded, drop-oldest progress-event ring
    /// ([`crate::ProgressStream`]). Full ⇒ the oldest undelivered event
    /// is evicted and counted ([`ServeReport::progress_events_dropped`]);
    /// publishing never blocks a worker.
    pub progress_capacity: usize,
    /// Capacity of the bounded, drop-oldest span-event ring behind
    /// [`DftService::trace`]. Only consumed while a
    /// [`crate::TraceCollector`] is attached — unwatched engines buffer
    /// nothing and pay one relaxed atomic load per would-be event. Full
    /// ⇒ the oldest undelivered event is evicted and counted
    /// ([`ServeReport::trace_events_dropped`]).
    pub trace_capacity: usize,
    /// Quality-of-service dispatch: when `true` (the default) each
    /// shard serves its [`Priority`] lanes highest-first with an aging
    /// escape hatch, so interactive jobs overtake queued bulk work.
    /// `false` routes every push to the standard lane — exactly the
    /// pre-QoS FIFO engine — while per-priority latency histograms
    /// still record each job's declared priority (the A/B knob the
    /// `serve_study` QoS sweep flips).
    pub qos: bool,
    /// Fair-share admission: `Some(n)` caps each [`crate::TenantId`]
    /// at `n` in-flight jobs — submissions over the cap fail with
    /// [`SubmitError::QuotaExceeded`] instead of queueing. `None`
    /// (the default) disables per-tenant accounting.
    pub tenant_quota: Option<u64>,
    /// Fused cross-job batch execution: when `true` (the default) a
    /// worker runs a same-class batch of ≥ 2 executable members through
    /// the shared-operand path — one Hamiltonian / bond-list setup and
    /// a fusion-aware plan serve every member, with per-job results
    /// bit-identical to solo execution. `false` reproduces the per-job
    /// engine exactly (the A/B knob the `serve_study` fused-exec sweep
    /// flips).
    pub fused_execution: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            shards: 2,
            queue_capacity: 64,
            max_batch: 8,
            policy: PlacementPolicy::CostAware,
            load_aware: true,
            cache_capacity: 256,
            cache_policy: CachePolicy::CostWeighted,
            cache_dir: None,
            progress_capacity: 1024,
            trace_capacity: 65_536,
            qos: true,
            tenant_quota: None,
            fused_execution: true,
        }
    }
}

/// What a submission turned into: a cache hit served on the spot, or a
/// queued job travelling to the workers. The public API always wraps
/// this in a [`JobTicket`]; [`ClientSession`] consumes it raw.
pub(crate) enum Issued {
    /// Served from the result cache at submission time.
    Cached {
        /// The job's content fingerprint.
        fingerprint: crate::fingerprint::Fingerprint,
        /// The trace id the admission allocated for the serve.
        trace: TraceId,
        /// The shared cached outcome.
        outcome: Arc<JobOutcome>,
    },
    /// Enqueued; the ticket resolves when a worker fulfills it.
    Queued(JobTicket),
}

/// State shared between the façade and the worker pool.
///
/// The admission path ([`EngineShared::issue`]) lives here rather than
/// on [`DftService`] so owned `Arc<EngineShared>` handles — the
/// workflow coordinator's [`crate::dag`] release path, which must be
/// `'static` to ride the ticket-waker registry — can submit without
/// borrowing the façade.
pub(crate) struct EngineShared {
    pub(crate) queue: ShardedQueue<PendingJob>,
    pub(crate) cache: ResultCache<Arc<JobOutcome>>,
    pub(crate) cluster: ClusterView,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) progress: Arc<ProgressBus>,
    pub(crate) telemetry: Arc<Telemetry>,
    pub(crate) tenants: Arc<TenantTable>,
    pub(crate) workflows: WorkflowRegistry,
    pub(crate) config: ServeConfig,
}

/// A running DFT-as-a-Service engine.
pub struct DftService {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<()>>,
}

impl DftService {
    /// Starts the engine with `config`, spawning its worker threads.
    ///
    /// # Panics
    ///
    /// Panics on a zero worker count, queue capacity, or cache
    /// capacity, and when `cache_dir` is set but the directory or its
    /// write-ahead file cannot be created/opened (misconfiguration; a
    /// *corrupt* existing file is recovered, not fatal — see
    /// [`crate::persist`]).
    pub fn start(config: ServeConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.shards > 0, "need at least one shard");
        let worker_count = config.workers;
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::with_disk(config.cache_capacity, config.cache_policy, dir)
                .expect("open persistent cache tier under cache_dir"),
            None => ResultCache::new(config.cache_capacity, config.cache_policy),
        };
        let shared = Arc::new(EngineShared {
            queue: ShardedQueue::new(config.shards, config.queue_capacity),
            cache,
            cluster: ClusterView::new(config.shards),
            metrics: Arc::new(Metrics::new(config.shards, config.workers)),
            progress: Arc::new(ProgressBus::new(config.progress_capacity)),
            telemetry: Arc::new(Telemetry::new(config.trace_capacity)),
            tenants: Arc::new(TenantTable::new(config.tenant_quota)),
            workflows: WorkflowRegistry::new(),
            config,
        });
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ndft-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn worker thread")
            })
            .collect();
        DftService { shared, workers }
    }

    /// Starts with defaults.
    pub fn start_default() -> Self {
        DftService::start(ServeConfig::default())
    }

    /// Backpressure-aware submission: serves from the result cache when
    /// possible, otherwise enqueues without blocking.
    ///
    /// Accepts anything convertible into a [`JobRequest`]: a bare
    /// [`DftJob`] submits with default QoS (standard priority, no
    /// deadline, default tenant); use the builder for more:
    /// `JobRequest::new(job).priority(Priority::Interactive)
    /// .deadline(d).tenant(t)`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::InvalidJob`] for impossible systems,
    /// [`SubmitError::QueueFull`] when saturated (back off and retry),
    /// [`SubmitError::AdmissionDenied`] when the modeled finish time
    /// overruns the request's deadline, [`SubmitError::QuotaExceeded`]
    /// when the tenant is at its in-flight quota, and
    /// [`SubmitError::Closed`] after shutdown began.
    pub fn submit(&self, request: impl Into<JobRequest>) -> Result<JobTicket, SubmitError> {
        self.submit_inner(request.into(), false)
    }

    /// Like [`DftService::submit`] but blocks for queue space instead of
    /// returning [`SubmitError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::InvalidJob`], [`SubmitError::AdmissionDenied`],
    /// [`SubmitError::QuotaExceeded`], or [`SubmitError::Closed`].
    pub fn submit_blocking(
        &self,
        request: impl Into<JobRequest>,
    ) -> Result<JobTicket, SubmitError> {
        self.submit_inner(request.into(), true)
    }

    fn submit_inner(&self, request: JobRequest, blocking: bool) -> Result<JobTicket, SubmitError> {
        match self.issue(request, blocking)? {
            Issued::Cached {
                fingerprint,
                trace,
                outcome,
            } => Ok(JobTicket::ready(fingerprint, trace, outcome)),
            Issued::Queued(ticket) => Ok(ticket),
        }
    }

    /// The shared admission path. [`ClientSession`] calls it directly: a
    /// cache hit hands back the outcome itself instead of wrapping it in
    /// an already-fulfilled ticket, so the session forwards it straight
    /// into its completion channel — no ticket allocation and two fewer
    /// lock round-trips per warm submission.
    pub(crate) fn issue(&self, request: JobRequest, blocking: bool) -> Result<Issued, SubmitError> {
        self.shared.issue(request, blocking)
    }

    /// [`DftService::issue`] with an optional warm input from a
    /// workflow parent — the hop the federation's release path takes
    /// so a parent outcome reaches the executing replica.
    pub(crate) fn issue_with(
        &self,
        request: JobRequest,
        blocking: bool,
        warm: Option<Arc<JobOutcome>>,
    ) -> Result<Issued, SubmitError> {
        self.shared.issue_with(request, blocking, warm)
    }

    /// Submits a dependency graph of jobs. Nodes with no parents enter
    /// the normal submit path immediately; every other node is held by
    /// the workflow coordinator and released the moment its last parent
    /// fulfills — riding the ticket-waker registry, so readiness costs
    /// no polling thread. A parent's output is injected into each child
    /// that [`DftJob::accepts_warm_seed`]s it, and a parent served from
    /// the result cache releases its children instantly. A failed
    /// parent (or engine shutdown) fails every unreleased descendant
    /// exactly once, counted as `orphaned` in the [`ServeReport`].
    ///
    /// # Errors
    ///
    /// [`crate::WorkflowError`] when the spec is empty, has a dangling
    /// or self edge, contains a cycle, or a node's job fails
    /// [`DftJob::validate`] — all checked before any node ticket or
    /// engine state is created, so a rejected spec leaks nothing.
    pub fn submit_workflow(
        &self,
        spec: WorkflowSpec,
    ) -> Result<WorkflowTicket, crate::dag::WorkflowError> {
        crate::dag::submit(crate::dag::Backend::Engine(Arc::clone(&self.shared)), spec)
    }
}

impl EngineShared {
    pub(crate) fn issue(&self, request: JobRequest, blocking: bool) -> Result<Issued, SubmitError> {
        self.issue_with(request, blocking, None)
    }

    /// [`EngineShared::issue`] with an optional warm input from a
    /// workflow parent, carried on the [`PendingJob`] into execution.
    /// Never part of the fingerprint: seeding is result-preserving, so
    /// cache identity is untouched.
    pub(crate) fn issue_with(
        &self,
        request: JobRequest,
        blocking: bool,
        warm: Option<Arc<JobOutcome>>,
    ) -> Result<Issued, SubmitError> {
        let JobRequest {
            job,
            priority,
            deadline,
            tenant,
        } = request;
        if let Err(e) = job.validate() {
            return Err(SubmitError::InvalidJob(e.to_string()));
        }
        let admitted = Instant::now();
        let fingerprint = job.fingerprint();
        let class = job.workload_class();
        // Two-tier lookup: memory, then (when configured) the
        // persistent tier — a disk hit decodes the record, promotes it
        // into memory, and serves without ever touching the queue.
        if let Some((hit, tier)) = self.cache.fetch_tiered(&fingerprint) {
            self.metrics.on_serve_from_cache();
            let trace = self.telemetry.next_trace_id();
            // The serve still counts end-to-end: the job's whole life is
            // this lookup, so the pairing with `completed` holds.
            let e2e = admitted.elapsed();
            self.telemetry.record_end_to_end(class, priority, e2e);
            if self.telemetry.traced() {
                let start_ns = self.telemetry.ns_at(admitted);
                // One ring acquisition for the whole two-event chain,
                // straight from the stack — this is the hottest traced
                // path on a warm cache.
                let events = [
                    TraceEvent {
                        seq: 0,
                        trace,
                        fingerprint,
                        class,
                        worker: None,
                        start_ns,
                        dur_ns: 0,
                        kind: TraceEventKind::CacheHit { tier },
                    },
                    TraceEvent {
                        seq: 0,
                        trace,
                        fingerprint,
                        class,
                        worker: None,
                        start_ns,
                        // The serve's whole life is the lookup, so the
                        // already-measured end-to-end span is the
                        // fulfill span — no second clock read.
                        dur_ns: e2e.as_nanos() as u64,
                        kind: TraceEventKind::TicketFulfill {
                            ok: true,
                            cached: true,
                        },
                    },
                ];
                self.telemetry.publish_slice(&events);
            }
            // Done is published before the caller can observe the
            // result, so by the time any waiter resolves, the lifecycle
            // stream already tells the whole story.
            self.progress.publish(
                fingerprint,
                JobStage::Done {
                    ok: true,
                    cached: true,
                },
            );
            return Ok(Issued::Cached {
                fingerprint,
                trace,
                outcome: hit,
            });
        }
        // Deadline admission: the modeled finish (queue pressure plus
        // this job's modeled run) must fit the deadline, or the job is
        // refused up front rather than queued to die. Checked after the
        // cache lookup — a warm serve beats any deadline.
        if let Some(d) = deadline {
            let deadline_s = d.as_secs_f64();
            let modeled_finish_s = self.modeled_finish_s(&job);
            if modeled_finish_s > deadline_s {
                self.metrics.on_admission_denied();
                return Err(SubmitError::AdmissionDenied {
                    modeled_finish_s,
                    deadline_s,
                });
            }
        }
        // Fair share: claim the tenant's in-flight slot last so a
        // denied deadline never charges the quota. The slot rides the
        // PendingJob and releases on every exit path by RAII.
        let tenant_slot = match self.tenants.try_acquire(tenant) {
            Ok(slot) => slot,
            Err(e) => {
                self.metrics.on_admission_denied();
                return Err(e);
            }
        };
        let trace = self.telemetry.next_trace_id();
        let ticket = JobTicket::pending(fingerprint, trace);
        // Class-keyed routing: a wave of same-class jobs lands on one
        // shard, so a home drain (or a stolen run) stays batchable under
        // a single planner consultation.
        let shard_key = class.shard_key();
        let shard = self.queue.shard_for(shard_key);
        // QoS off routes everything through the standard lane — the
        // exact pre-QoS FIFO — while the job keeps its declared
        // priority for the latency histograms.
        let lane = if self.config.qos {
            priority.index()
        } else {
            Priority::Standard.index()
        };
        let pending = PendingJob {
            job,
            fingerprint,
            class,
            trace,
            priority,
            deadline,
            _tenant_slot: tenant_slot,
            ticket: ticket.clone(),
            enqueued: admitted,
            warm,
            progress: Arc::clone(&self.progress),
            metrics: Arc::clone(&self.metrics),
            telemetry: Arc::clone(&self.telemetry),
        };
        // Queued is published *before* the push: once the job is in the
        // queue a worker may stream Planned/Running/Done at any moment,
        // and the lifecycle must never appear out of order (the Enqueue
        // span event follows the same rule). A rejected push hands the
        // PendingJob back, and the error arm below closes the dangling
        // lifecycle itself — a never-admitted job must not run the
        // worker-side Drop guard's failure accounting.
        self.progress
            .publish(fingerprint, JobStage::Queued { shard });
        if self.telemetry.traced() {
            self.telemetry.publish(TraceEvent {
                seq: 0,
                trace,
                fingerprint,
                class,
                worker: None,
                start_ns: self.telemetry.ns_at(admitted),
                dur_ns: 0,
                kind: TraceEventKind::Enqueue { shard },
            });
        }
        let pushed = if blocking {
            self.queue.push_at(shard_key, lane, pending)
        } else {
            self.queue.try_push_at(shard_key, lane, pending)
        };
        match pushed {
            Ok(()) => {
                self.metrics.on_submit();
                Ok(Issued::Queued(ticket))
            }
            Err((pending, e)) => {
                if e == SubmitError::QueueFull {
                    self.metrics.on_reject();
                }
                // Close the streamed lifecycle, then defuse the Drop
                // guard by resolving the ticket first: this job was
                // never admitted, so it counts as a rejection — not as
                // a submitted-then-failed job. (No end-to-end histogram
                // record either, for the same reason; the trace chain
                // still closes with a failed fulfill event.)
                self.progress.publish(
                    fingerprint,
                    JobStage::Done {
                        ok: false,
                        cached: false,
                    },
                );
                if self.telemetry.traced() {
                    self.telemetry.publish(TraceEvent {
                        seq: 0,
                        trace,
                        fingerprint,
                        class,
                        worker: None,
                        start_ns: self.telemetry.now_ns(),
                        dur_ns: 0,
                        kind: TraceEventKind::TicketFulfill {
                            ok: false,
                            cached: false,
                        },
                    });
                }
                pending.ticket.fulfill(Err(crate::job::JobError::ShutDown));
                drop(pending);
                Err(e)
            }
        }
    }

    /// Modeled seconds until a job submitted *now* would finish:
    /// current reservation pressure plus the backlog's modeled drain
    /// (approximated as the queue depth times this job's own modeled
    /// run — a deliberate worst-case stand-in, since queued jobs'
    /// graphs aren't re-planned here), spread across the worker pool,
    /// plus the job's own modeled run. The admission-control estimate
    /// behind [`SubmitError::AdmissionDenied`].
    fn modeled_finish_s(&self, job: &DftJob) -> f64 {
        let Ok(graph) = job.task_graph() else {
            // Invalid systems are rejected before admission; an
            // unreachable fallback that admits rather than lies.
            return 0.0;
        };
        let snap = self.cluster.snapshot();
        let decision = if self.config.load_aware {
            plan_placement_loaded(&graph, self.config.policy, &snap)
        } else {
            plan_placement_loaded(&graph, self.config.policy, &ClusterSnapshot::idle())
        };
        let run_s = decision.modeled_cost_s(job.modeled_iterations());
        let backlog_s = snap.cpu_reserved_s + snap.ndp_reserved_s + self.queue.len() as f64 * run_s;
        backlog_s / self.config.workers.max(1) as f64 + run_s
    }
}

impl DftService {
    /// Opens a multiplexing [`ClientSession`] over this engine, paired
    /// with the [`CompletionStream`] its finished jobs drain through in
    /// finish order. Any number of sessions can coexist; each sees only
    /// its own submissions.
    pub fn session(&self) -> (ClientSession<'_>, CompletionStream) {
        ClientSession::new(self)
    }

    /// Subscribes to the engine's per-job lifecycle events (`Queued` →
    /// `Planned` → `Running` → `Done`). Handles share one bounded
    /// drop-oldest ring and consume destructively — see
    /// [`crate::progress`].
    pub fn progress(&self) -> ProgressStream {
        ProgressStream::new(Arc::clone(&self.shared.progress))
    }

    /// Live in-flight ticket gauge: submissions not yet fulfilled
    /// (cache serves count as instantly fulfilled).
    pub fn tickets_outstanding(&self) -> u64 {
        self.shared.metrics.tickets_outstanding()
    }

    /// Jobs currently queued across all shards (not yet picked up by a
    /// worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Live per-shard queue depths (index = shard).
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shared.queue.shard_depths()
    }

    /// Result-cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Live view of what concurrent batches have reserved per target.
    pub fn cluster_snapshot(&self) -> ClusterSnapshot {
        self.shared.cluster.snapshot()
    }

    /// Consistent export of the per-stage latency histograms: one
    /// [`crate::HistogramSnapshot`] per [`crate::Stage`] per
    /// [`crate::WorkloadClass`] (execute additionally split by
    /// [`crate::PlacementTarget`]), the span-ring counters, and the
    /// queue's per-shard high-watermarks. Serializable with
    /// [`TelemetrySnapshot::to_json`].
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.shared.telemetry.snapshot();
        snap.queue_high_watermarks = self.shared.queue.shard_high_watermarks();
        snap
    }

    /// Attaches a [`TraceCollector`] to the engine's span-event ring.
    /// While any collector is alive, workers publish a
    /// [`crate::TraceEvent`] at every job lifecycle transition; drain
    /// them and render with [`crate::chrome_trace_json`]. With no
    /// collector attached the engine buffers nothing and each would-be
    /// event costs one relaxed atomic load.
    pub fn trace(&self) -> TraceCollector {
        TraceCollector::new(Arc::clone(&self.shared.telemetry))
    }

    /// Live metrics snapshot, taken as one consistent pass.
    ///
    /// The report folds together counters (metrics), cache stats, and
    /// the queue's live per-shard depths — state owned by three
    /// different structures that workers mutate concurrently. Reading
    /// them one after another can pair a depth vector with dispatch
    /// counters from a different instant (a drain between the two reads
    /// makes `shard_depths` and `shard_dispatched` disagree about the
    /// same jobs). The snapshot is therefore taken seqlock-style:
    /// record the depths *and* the monotonic lifetime dispatch total,
    /// snapshot everything, re-read both, and retry if either moved.
    /// The monotonic counters are the real witnesses — depths alone
    /// could read equal across a drain + offsetting pushes, but the
    /// dispatch total only ever grows, so equality proves no dispatch
    /// raced the snapshot — and the telemetry hub's end-to-end record
    /// count joins it: a stable attempt additionally requires that
    /// count to equal the sum of the four terminal counters
    /// (`completed`, `failed`, `cancelled`, `deadline_dropped`), so the
    /// report's histogram-derived `class_latency` rows can never describe more
    /// (or fewer) jobs than its counters admit to. A handful of
    /// attempts always suffices in practice; if the engine churns
    /// faster than we can snapshot, the last (possibly torn) attempt
    /// is returned rather than spinning forever.
    pub fn report(&self) -> ServeReport {
        let mut report = None;
        for _ in 0..8 {
            let depths = self.shared.queue.shard_depths();
            let dispatched = self.shared.metrics.total_dispatched();
            let e2e = self.shared.telemetry.e2e_count();
            let r = self.shared.metrics.report(
                self.shared.cache.stats(),
                depths.clone(),
                self.shared.progress.dropped(),
                self.shared.telemetry.class_latency(),
                self.shared.telemetry.priority_latency(),
                self.shared.telemetry.trace_events_dropped(),
            );
            let stable = self.shared.metrics.total_dispatched() == dispatched
                && self.shared.telemetry.e2e_count() == e2e
                && r.completed + r.failed + r.cancelled + r.deadline_dropped == e2e
                && self.shared.queue.shard_depths() == depths;
            report = Some(r);
            if stable {
                break;
            }
        }
        report.expect("at least one snapshot attempt")
    }

    /// Begins shutdown without consuming the service: closes the
    /// submission queue, so new submissions fail with
    /// [`SubmitError::Closed`] and **every producer blocked in
    /// [`DftService::submit_blocking`] on a full shard wakes with
    /// `Closed`** rather than hanging. Queued work still drains;
    /// call [`DftService::shutdown`] (or drop) to join the workers.
    pub fn close(&self) {
        self.shared.queue.close();
    }

    /// Stops accepting work, drains every shard, joins the workers, and
    /// returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.shutdown_in_place();
        self.report()
    }

    /// Abrupt stop — the fault-injection counterpart to
    /// [`DftService::shutdown`]. Where `shutdown` lets the closed queue
    /// drain (workers exit only once it is empty, so every queued job
    /// still executes), `kill` closes the queue and **sweeps the backlog
    /// first**: still-queued jobs fail fast with
    /// [`crate::JobError::ShutDown`] instead of running. Jobs a worker
    /// already started finish normally and resolve their tickets. This
    /// is what a federated replica loss looks like from the inside —
    /// the queued jobs' failures are what [`crate::FederatedService`]
    /// replays onto the surviving ring.
    pub fn kill(mut self) -> ServeReport {
        self.shared.queue.close();
        // Same sweep protocol as shutdown_in_place, but run *before*
        // joining, so the backlog dies instead of draining. Workers
        // racing the sweep may still pop a few jobs; those execute and
        // count as completed — the exactly-once ticket layer makes both
        // outcomes equivalent to a caller.
        for pending in self.shared.queue.drain_all() {
            if pending.ticket.is_done() {
                pending.consume_cancelled();
            } else {
                pending.fail(crate::job::JobError::ShutDown);
            }
        }
        self.shutdown_in_place();
        self.report()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            if w.join().is_err() {
                self.shared.metrics.on_worker_panic();
            }
        }
        // Workers fulfill every ticket they dequeue (panics included) and
        // only exit once the closed queue is empty, so leftovers exist
        // only if a worker thread died outright. Sweep every shard and
        // fail them explicitly rather than leaving waiters hanging. The
        // shared failure protocol records the counters, the end-to-end
        // latency, the closing Done, and the trace fulfill event.
        // Cancelled tombstones (ticket already resolved) take the
        // cancellation exit instead, so they count once as cancelled
        // rather than as shutdown failures.
        for pending in self.shared.queue.drain_all() {
            if pending.ticket.is_done() {
                pending.consume_cancelled();
            } else {
                pending.fail(crate::job::JobError::ShutDown);
            }
        }
        // (Entries failed above drop with their tickets already done, so
        // the PendingJob Drop guard publishes nothing extra.)
        // Workflow sweep: released nodes were handled above (their
        // engine tickets live in the queue), but nodes still *held* by
        // the coordinator — waiting on parents that will now never
        // fulfill — have no queue entry to sweep. Orphan them here,
        // exactly once per node (the coordinator's per-node phase flag
        // makes a racing parent-failure cascade and this sweep
        // idempotent), so every workflow ticket resolves and the
        // extended conservation invariant closes its books.
        self.shared.workflows.sweep();
        // Close the lifecycle stream last: buffered events still drain,
        // then blocking consumers observe end-of-stream instead of
        // parking forever on a dead engine.
        self.shared.progress.close();
    }
}

impl Drop for DftService {
    fn drop(&mut self) {
        // Safety net for callers that drop without shutdown(): workers
        // would otherwise block forever on the open queue.
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobPayload;
    use std::time::Duration;

    fn md(atoms: usize, seed: u64) -> DftJob {
        DftJob::MdSegment {
            atoms,
            steps: 5,
            temperature_k: 300.0,
            seed,
        }
    }

    #[test]
    fn submit_execute_wait_roundtrip() {
        let svc = DftService::start(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        let ticket = svc.submit(md(64, 1)).unwrap();
        let outcome = ticket.wait().unwrap();
        match outcome.payload {
            JobPayload::Md(ref t) => assert_eq!(t.atoms, 64),
            ref other => panic!("unexpected payload {other:?}"),
        }
        let report = svc.shutdown();
        assert_eq!(report.completed, 1);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn resubmission_hits_cache() {
        let svc = DftService::start_default();
        svc.submit(md(64, 7)).unwrap().wait().unwrap();
        let again = svc.submit(md(64, 7)).unwrap();
        assert!(again.is_done(), "cache serve resolves immediately");
        let report = svc.shutdown();
        assert!(report.served_from_cache >= 1);
        assert!(report.cache.hits >= 1);
    }

    #[test]
    fn invalid_job_rejected_at_submission() {
        let svc = DftService::start_default();
        match svc.submit(md(10, 0)) {
            Err(SubmitError::InvalidJob(_)) => {}
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        let report = svc.shutdown();
        assert_eq!(report.submitted, 0);
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let svc = DftService::start(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        });
        let tickets: Vec<_> = (0..6).map(|s| svc.submit(md(64, s)).unwrap()).collect();
        let report = svc.shutdown();
        assert!(tickets.iter().all(|t| t.is_done()), "drained on shutdown");
        assert_eq!(report.completed, 6);
    }

    #[test]
    fn submissions_rejected_after_shutdown() {
        let mut svc = DftService::start_default();
        svc.shutdown_in_place();
        assert!(matches!(svc.submit(md(64, 0)), Err(SubmitError::Closed)));
    }

    /// A queued entry whose deadline has already passed is dropped by
    /// the worker that reaches it: counted, ticket resolved with
    /// `DeadlineExceeded`, and the conservation invariant still holds.
    ///
    /// Modeled time runs ~1000x wall time here, so any deadline loose
    /// enough to pass modeled admission can never expire during a
    /// millisecond-scale real queue wait — the expired entry is built
    /// directly to exercise the worker-side path deterministically.
    #[test]
    fn workers_drop_deadline_expired_queued_jobs() {
        use crate::job::JobError;

        let svc = DftService::start(ServeConfig {
            workers: 1,
            shards: 1,
            max_batch: 1,
            ..ServeConfig::default()
        });
        // Wedge the single worker with real wall-clock work so the
        // hand-built entry sits queued until its deadline check.
        let blocker = svc
            .submit(DftJob::MdSegment {
                atoms: 64,
                steps: 50_000,
                temperature_k: 300.0,
                seed: 1,
            })
            .unwrap();
        let job = md(64, 2);
        let fingerprint = job.fingerprint();
        let class = job.workload_class();
        let trace = svc.shared.telemetry.next_trace_id();
        let ticket = JobTicket::pending(fingerprint, trace);
        let pending = PendingJob {
            job,
            fingerprint,
            class,
            trace,
            priority: Priority::Standard,
            deadline: Some(Duration::from_nanos(1)),
            _tenant_slot: None,
            ticket: ticket.clone(),
            enqueued: Instant::now(),
            warm: None,
            progress: Arc::clone(&svc.shared.progress),
            metrics: Arc::clone(&svc.shared.metrics),
            telemetry: Arc::clone(&svc.shared.telemetry),
        };
        assert!(svc
            .shared
            .queue
            .try_push_at(class.shard_key(), Priority::Standard.index(), pending)
            .is_ok());
        // Keep the books paired with the push, exactly as issue() does.
        svc.shared.metrics.on_submit();
        assert_eq!(ticket.wait().unwrap_err(), JobError::DeadlineExceeded);
        blocker.wait().unwrap();
        let report = svc.shutdown();
        assert_eq!(report.deadline_dropped, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.tickets_outstanding, 0);
        assert!(report.conservation_holds());
    }
}
