//! Per-stage latency telemetry: lock-free sharded histograms and the
//! consistent snapshot the export layer serves.
//!
//! The serve engine's [`crate::ServeReport`] carries means and raw
//! counters — enough to rank configurations, useless at the tail. This
//! module is the measurement substrate underneath it: every job that
//! flows through the engine records nanosecond latencies into
//! log-bucketed histograms keyed by [`Stage`] × [`WorkloadClass`] (and,
//! for the execute stage, by [`PlacementTarget`]), so
//! [`crate::DftService::telemetry`] can answer "what is the p99
//! queue-wait of `md/Si_64x10` on the NDP path" at any moment.
//!
//! # Histogram design
//!
//! [`LatencyHistogram`] is an HDR-style log-linear histogram over
//! nanosecond durations:
//!
//! * Values below 16 ns get one exact bucket each; above that, each
//!   power-of-two octave is split into 8 linear sub-buckets, so the
//!   **relative rank error is bounded by 1/8**: a reported quantile is
//!   never below the true order statistic and never more than 12.5%
//!   above it (`tests/serve_properties.rs` proves the bound under
//!   random streams).
//! * The bucket count is fixed at compile time ([`BUCKETS`] = 320,
//!   covering up to ~73 minutes before clamping into the last bucket),
//!   so memory is constant regardless of how many values are recorded.
//! * Recording is **wait-free**: a thread picks one of [`SHARDS`]
//!   atomic bucket banks by a thread-local index and does three
//!   relaxed `fetch_add`s plus a `fetch_max` — no locks, no allocation,
//!   no contention between workers on different banks.
//! * Banks merge into an owned [`HistogramSnapshot`], and snapshots
//!   merge with each other (bucket-wise addition), which is what makes
//!   per-class histograms aggregate into per-stage totals.
//!
//! The per-class registry behind [`Telemetry`] is a read-mostly
//! `RwLock<HashMap>`: the write lock is taken only the first time a
//! workload class is ever seen; steady-state recording resolves the
//! class under a read lock once per batch and then touches atomics
//! only.
//!
//! # Relation to tracing
//!
//! Histograms are always on — they are the substrate
//! [`crate::ServeReport`] percentiles are derived from, and their cost
//! is a handful of uncontended atomic adds per job. Per-event *span*
//! records (the Chrome-traceable timeline) are subscriber-gated and
//! live in [`crate::trace`]; [`Telemetry`] owns the ring so one handle
//! reaches both.

use crate::job::{Priority, WorkloadClass};
use crate::placement::PlacementDecision;
use crate::trace::{TraceEvent, TraceRing};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// One lifecycle stage a latency histogram is kept for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Submission push → the job's batch starts processing.
    QueueWait,
    /// Planner consultation + modeled engine run (paid once per batch,
    /// recorded against the member that triggered it).
    Plan,
    /// Lifetime of the batch's [`crate::cluster::Reservation`] on the
    /// shared cluster view (recorded once per planned batch).
    Reserve,
    /// Wall-clock of the numeric kernels ([`crate::JobOutcome`]'s
    /// `wall_numeric`).
    Execute,
    /// Outcome ready → ticket fulfilled (cache store + lifecycle
    /// publish + waiter wake).
    Fulfill,
    /// Submission → ticket fulfilled, every path: executed, deduped,
    /// cache-served at submission, failed, drop-guard.
    EndToEnd,
    /// Workflow-node submission → DAG release (the time a node spent
    /// held by the workflow coordinator ([`crate::dag`]) waiting for its last
    /// parent to fulfill; recorded at release, zero for roots released
    /// at submit).
    DagWait,
}

/// Number of [`Stage`] variants (array dimension for per-stage banks).
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// Every stage, in reporting order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::QueueWait,
        Stage::Plan,
        Stage::Reserve,
        Stage::Execute,
        Stage::Fulfill,
        Stage::EndToEnd,
        Stage::DagWait,
    ];

    /// Snake-case label used in JSON exports and tables.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Plan => "plan",
            Stage::Reserve => "reserve",
            Stage::Execute => "execute",
            Stage::Fulfill => "fulfill",
            Stage::EndToEnd => "end_to_end",
            Stage::DagWait => "dag_wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Plan => 1,
            Stage::Reserve => 2,
            Stage::Execute => 3,
            Stage::Fulfill => 4,
            Stage::EndToEnd => 5,
            Stage::DagWait => 6,
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a batch's placement plan put the work, coarsely: the execute
/// histogram is additionally keyed by this, so CPU-resident and
/// NDP-resident latencies of the same class stay separable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlacementTarget {
    /// Every task-graph stage placed on the host CPU.
    Cpu,
    /// Every stage placed on the NDP stacks.
    Ndp,
    /// The plan splits stages across both targets.
    Hybrid,
}

/// Number of [`PlacementTarget`] variants.
pub const TARGET_COUNT: usize = 3;

impl PlacementTarget {
    /// Every target, in reporting order.
    pub const ALL: [PlacementTarget; TARGET_COUNT] = [
        PlacementTarget::Cpu,
        PlacementTarget::Ndp,
        PlacementTarget::Hybrid,
    ];

    /// Classifies a placement decision by where its stages landed.
    pub fn of(decision: &PlacementDecision) -> PlacementTarget {
        let ndp = decision.ndp_stage_count();
        let total = decision.plan.placement.len();
        if ndp == 0 {
            PlacementTarget::Cpu
        } else if ndp == total {
            PlacementTarget::Ndp
        } else {
            PlacementTarget::Hybrid
        }
    }

    /// Short label used in JSON exports and tables.
    pub fn label(self) -> &'static str {
        match self {
            PlacementTarget::Cpu => "cpu",
            PlacementTarget::Ndp => "ndp",
            PlacementTarget::Hybrid => "hybrid",
        }
    }

    fn index(self) -> usize {
        match self {
            PlacementTarget::Cpu => 0,
            PlacementTarget::Ndp => 1,
            PlacementTarget::Hybrid => 2,
        }
    }
}

impl std::fmt::Display for PlacementTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Exact single-value buckets below this (16 = `1 << (SUB_BITS + 1)`).
const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power-of-two octave (3 bits ⇒ 8 ⇒ ≤ 12.5% width).
const SUB_BITS: u32 = 3;
const SUBS_PER_OCTAVE: usize = 1 << SUB_BITS;
/// Largest exponent bucketed precisely; values at 2^42 and beyond clamp
/// into the final bucket (2^42 ns ≈ 73 minutes — far past any latency
/// this engine produces).
const MAX_EXPONENT: u32 = 41;
/// Total buckets: 16 exact + 8 per octave for exponents 4..=41.
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + (MAX_EXPONENT as usize - 3) * SUBS_PER_OCTAVE;
/// Independent atomic bucket banks; recording threads spread across
/// them by a thread-local index so concurrent workers rarely share a
/// cache line, and snapshots merge all banks.
pub const SHARDS: usize = 8;

/// The bucket a nanosecond value lands in.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        return v as usize;
    }
    let e = (63 - v.leading_zeros()).min(MAX_EXPONENT);
    let mantissa = ((v >> (e - SUB_BITS)) as usize - SUBS_PER_OCTAVE).min(SUBS_PER_OCTAVE - 1);
    LINEAR_CUTOFF as usize + (e as usize - 4) * SUBS_PER_OCTAVE + mantissa
}

/// Inclusive upper bound of bucket `i` — what quantile estimation
/// reports, so estimates never undershoot the true order statistic.
fn bucket_max(i: usize) -> u64 {
    if i < LINEAR_CUTOFF as usize {
        return i as u64;
    }
    if i == BUCKETS - 1 {
        // The clamp bucket holds everything past 2^42.
        return u64::MAX;
    }
    let j = i - LINEAR_CUTOFF as usize;
    let e = 4 + (j / SUBS_PER_OCTAVE) as u32;
    let m = (j % SUBS_PER_OCTAVE) as u64;
    let width = 1u64 << (e - SUB_BITS);
    ((SUBS_PER_OCTAVE as u64 + m) << (e - SUB_BITS)) + width - 1
}

struct Bank {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Bank {
    fn new() -> Self {
        Bank {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

/// Global round-robin assignment of recording threads to banks.
static NEXT_BANK: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread picks its bank once; `usize::MAX` = unassigned.
    static MY_BANK: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

fn my_bank() -> usize {
    MY_BANK.with(|b| {
        let mut i = b.get();
        if i == usize::MAX {
            i = NEXT_BANK.fetch_add(1, Ordering::Relaxed) % SHARDS;
            b.set(i);
        }
        i
    })
}

/// A lock-free, thread-sharded, log-bucketed latency histogram.
///
/// Constant memory ([`BUCKETS`] buckets × [`SHARDS`] banks), wait-free
/// recording, mergeable snapshots, and quantile estimates whose
/// relative error is bounded by the sub-bucket width (≤ 1/8 above the
/// exact range). See the [module docs](self) for the bucketing scheme.
pub struct LatencyHistogram {
    banks: Vec<Bank>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            banks: (0..SHARDS).map(|_| Bank::new()).collect(),
        }
    }

    /// Records one duration (saturated to nanoseconds). Wait-free:
    /// relaxed atomic adds on the calling thread's bank.
    pub fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        let bank = &self.banks[my_bank()];
        bank.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        bank.count.fetch_add(1, Ordering::Relaxed);
        bank.sum_ns.fetch_add(ns, Ordering::Relaxed);
        bank.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Values recorded so far (all banks).
    pub fn count(&self) -> u64 {
        self.banks
            .iter()
            .map(|b| b.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges every bank into one owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot::empty();
        for bank in &self.banks {
            for (i, bucket) in bank.buckets.iter().enumerate() {
                s.counts[i] += bucket.load(Ordering::Relaxed);
            }
            s.count += bank.count.load(Ordering::Relaxed);
            s.sum_ns += bank.sum_ns.load(Ordering::Relaxed) as u128;
            s.max_ns = s.max_ns.max(bank.max_ns.load(Ordering::Relaxed));
        }
        s
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// An owned, mergeable point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Bucket-wise accumulation of `other` into `self` (how per-class
    /// histograms aggregate into per-stage totals).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values, nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Largest recorded value, nanoseconds (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of recorded values, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// inclusive upper bound of the bucket holding the order statistic
    /// of rank `ceil(q · count)`. Never below the true value, at most
    /// 12.5% above it; 0 when empty. The true maximum caps the
    /// estimate, so `quantile_ns(1.0) == max_ns()` exactly.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_max(i).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// [`HistogramSnapshot::quantile_ns`] in seconds.
    pub fn quantile_s(&self, q: f64) -> f64 {
        self.quantile_ns(q) as f64 * 1e-9
    }

    /// Median estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 90th-percentile estimate, nanoseconds.
    pub fn p90_ns(&self) -> u64 {
        self.quantile_ns(0.90)
    }

    /// 99th-percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th-percentile estimate, nanoseconds.
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\": {}, \"sum_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}, \
             \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
            self.count,
            self.sum_ns,
            self.mean_ns(),
            self.max_ns,
            self.p50_ns(),
            self.p90_ns(),
            self.p99_ns(),
            self.p999_ns(),
        ));
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

/// Per-class bank of stage histograms (plus the execute stage split by
/// placement target).
struct ClassTelemetry {
    stages: Vec<LatencyHistogram>,
    targets: Vec<LatencyHistogram>,
}

impl ClassTelemetry {
    fn new() -> Self {
        ClassTelemetry {
            stages: (0..STAGE_COUNT).map(|_| LatencyHistogram::new()).collect(),
            targets: (0..TARGET_COUNT).map(|_| LatencyHistogram::new()).collect(),
        }
    }
}

/// A per-class recording handle: one registry lookup amortized over a
/// whole batch of records (workers resolve it once per batch, then
/// every stage record is pure atomics).
#[derive(Clone)]
pub struct ClassRecorder {
    inner: Arc<ClassTelemetry>,
}

impl ClassRecorder {
    /// Records `d` into this class's histogram for `stage`.
    pub fn record(&self, stage: Stage, d: Duration) {
        self.inner.stages[stage.index()].record(d);
    }

    /// Records an execute-stage duration under its placement target
    /// (in addition to [`ClassRecorder::record`] with
    /// [`Stage::Execute`], not instead of it).
    pub fn record_target(&self, target: PlacementTarget, d: Duration) {
        self.inner.targets[target.index()].record(d);
    }
}

/// The engine-wide telemetry hub: the per-class histogram registry, the
/// engine epoch all trace timestamps are relative to, and the span
/// ring. One `Arc<Telemetry>` travels with every [`crate::worker`]
/// entry so even the Drop-guard path can record.
pub struct Telemetry {
    epoch: Instant,
    classes: RwLock<HashMap<WorkloadClass, Arc<ClassTelemetry>>>,
    /// End-to-end latency split by scheduling priority (fixed 3-slot
    /// bank, indexed by [`Priority::index`]) — the substrate the QoS
    /// sweep's "interactive p99 under a bulk flood" gate reads.
    priority_e2e: [LatencyHistogram; 3],
    /// Monotone count of end-to-end records — the seqlock witness
    /// [`crate::DftService::report`] pairs with the job counters.
    e2e_recorded: AtomicU64,
    next_trace: AtomicU64,
    ring: TraceRing,
}

impl Telemetry {
    /// A fresh hub whose epoch is "now" and whose span ring holds
    /// `trace_capacity` events.
    pub fn new(trace_capacity: usize) -> Self {
        Telemetry {
            epoch: Instant::now(),
            classes: RwLock::new(HashMap::new()),
            priority_e2e: std::array::from_fn(|_| LatencyHistogram::new()),
            e2e_recorded: AtomicU64::new(0),
            next_trace: AtomicU64::new(1),
            ring: TraceRing::new(trace_capacity),
        }
    }

    /// The instant all trace timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds from the epoch to now.
    pub fn now_ns(&self) -> u64 {
        self.ns_at(Instant::now())
    }

    /// Nanoseconds from the epoch to `at` (0 for pre-epoch instants).
    pub fn ns_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    /// Allocates the next job trace id (unique per engine instance).
    pub fn next_trace_id(&self) -> crate::trace::TraceId {
        crate::trace::TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// True while at least one [`crate::TraceCollector`] is attached —
    /// the one relaxed load unwatched engines pay per would-be event.
    #[inline]
    pub fn traced(&self) -> bool {
        self.ring.has_subscribers()
    }

    /// Publishes a span event (dropped unless [`Telemetry::traced`]).
    pub fn publish(&self, event: TraceEvent) {
        self.ring.publish(event);
    }

    /// Publishes a run of span events under one ring-lock acquisition.
    /// The hot paths batch each job's chain through here; events are
    /// `Copy`, so a stack array works — no buffer allocation needed.
    pub fn publish_slice(&self, events: &[TraceEvent]) {
        self.ring.publish_slice(events);
    }

    /// The span ring (collector subscriptions attach here).
    pub(crate) fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// The recording handle for `class`, creating its histogram bank on
    /// first sight. Read-lock fast path; the write lock is only ever
    /// taken once per distinct class per engine lifetime.
    pub fn class(&self, class: WorkloadClass) -> ClassRecorder {
        if let Some(found) = self.classes.read().unwrap().get(&class) {
            return ClassRecorder {
                inner: Arc::clone(found),
            };
        }
        let mut map = self.classes.write().unwrap();
        let inner = Arc::clone(
            map.entry(class)
                .or_insert_with(|| Arc::new(ClassTelemetry::new())),
        );
        ClassRecorder { inner }
    }

    /// Records one duration for `class`/`stage` (one registry lookup;
    /// batch paths should hold a [`ClassRecorder`] instead).
    pub fn record(&self, class: WorkloadClass, stage: Stage, d: Duration) {
        self.class(class).record(stage, d);
    }

    /// Records a job's end-to-end latency and bumps the monotone
    /// witness counter. Exactly one call per fulfilled ticket —
    /// executed, deduped, cache-served, failed, cancelled,
    /// deadline-dropped, or drop-guarded — so `e2e_count` always equals
    /// `completed + failed + cancelled + deadline_dropped` in a
    /// quiescent engine.
    pub fn record_end_to_end(&self, class: WorkloadClass, priority: Priority, d: Duration) {
        self.class(class).record(Stage::EndToEnd, d);
        self.priority_e2e[priority.index()].record(d);
        self.e2e_recorded.fetch_add(1, Ordering::Release);
    }

    /// Monotone count of end-to-end records (the snapshot witness).
    pub fn e2e_count(&self) -> u64 {
        self.e2e_recorded.load(Ordering::Acquire)
    }

    /// Span events dropped because the ring was full.
    pub fn trace_events_dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Merged snapshot of every class's histograms plus the ring's
    /// counters. Queue high-watermarks are stitched in by
    /// [`crate::DftService::telemetry`], which owns the queue.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut classes: Vec<ClassSnapshot> = self
            .classes
            .read()
            .unwrap()
            .iter()
            .map(|(class, t)| ClassSnapshot {
                class: *class,
                stages: t.stages.iter().map(LatencyHistogram::snapshot).collect(),
                targets: t.targets.iter().map(LatencyHistogram::snapshot).collect(),
            })
            .collect();
        classes.sort_by_key(|c| c.class);
        TelemetrySnapshot {
            uptime_s: self.epoch.elapsed().as_secs_f64(),
            classes,
            e2e_count: self.e2e_count(),
            trace_events_recorded: self.ring.recorded(),
            trace_events_dropped: self.ring.dropped(),
            queue_high_watermarks: Vec::new(),
        }
    }

    /// Per-class end-to-end percentile summaries, sorted by class —
    /// what [`crate::ServeReport`] embeds.
    pub fn class_latency(&self) -> Vec<ClassLatencySummary> {
        let mut rows: Vec<ClassLatencySummary> = self
            .classes
            .read()
            .unwrap()
            .iter()
            .map(|(class, t)| {
                let s = t.stages[Stage::EndToEnd.index()].snapshot();
                ClassLatencySummary {
                    class: *class,
                    jobs: s.count(),
                    p50_s: s.quantile_s(0.50),
                    p90_s: s.quantile_s(0.90),
                    p99_s: s.quantile_s(0.99),
                    p999_s: s.quantile_s(0.999),
                    max_s: s.max_ns() as f64 * 1e-9,
                }
            })
            .collect();
        rows.sort_by_key(|r| r.class);
        rows
    }

    /// Per-priority end-to-end percentile summaries, one row per
    /// [`Priority`] in service order (rows for unused priorities report
    /// zero jobs) — what [`crate::ServeReport`] embeds next to the
    /// per-class rows.
    pub fn priority_latency(&self) -> Vec<PriorityLatencySummary> {
        Priority::ALL
            .iter()
            .map(|&priority| {
                let s = self.priority_e2e[priority.index()].snapshot();
                PriorityLatencySummary {
                    priority,
                    jobs: s.count(),
                    p50_s: s.quantile_s(0.50),
                    p90_s: s.quantile_s(0.90),
                    p99_s: s.quantile_s(0.99),
                    p999_s: s.quantile_s(0.999),
                    max_s: s.max_ns() as f64 * 1e-9,
                }
            })
            .collect()
    }
}

/// Per-priority end-to-end latency percentiles, embedded in
/// [`crate::ServeReport`] alongside the per-class rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityLatencySummary {
    /// The scheduling priority.
    pub priority: Priority,
    /// Jobs of this priority with a recorded end-to-end latency.
    pub jobs: u64,
    /// Median end-to-end latency, seconds.
    pub p50_s: f64,
    /// 90th percentile, seconds.
    pub p90_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
    /// Worst observed, seconds (exact).
    pub max_s: f64,
}

/// Per-class end-to-end latency percentiles, embedded in
/// [`crate::ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassLatencySummary {
    /// The workload class.
    pub class: WorkloadClass,
    /// Jobs of this class with a recorded end-to-end latency.
    pub jobs: u64,
    /// Median end-to-end latency, seconds.
    pub p50_s: f64,
    /// 90th percentile, seconds.
    pub p90_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// 99.9th percentile, seconds.
    pub p999_s: f64,
    /// Worst observed, seconds (exact).
    pub max_s: f64,
}

/// One class's stage histograms inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSnapshot {
    /// The workload class.
    pub class: WorkloadClass,
    stages: Vec<HistogramSnapshot>,
    targets: Vec<HistogramSnapshot>,
}

impl ClassSnapshot {
    /// The histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// The execute-stage histogram for one placement target.
    pub fn target(&self, target: PlacementTarget) -> &HistogramSnapshot {
        &self.targets[target.index()]
    }
}

/// A consistent point-in-time export of the whole telemetry hub:
/// per-class per-stage histograms, stage totals, drop counters, and
/// queue high-watermarks. Serializable to JSON
/// ([`TelemetrySnapshot::to_json`]); the span timeline exports
/// separately through [`crate::trace::chrome_trace_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Seconds since the engine epoch.
    pub uptime_s: f64,
    /// Per-class histograms, sorted by class.
    pub classes: Vec<ClassSnapshot>,
    /// End-to-end latencies recorded (== completed + failed once the
    /// engine is quiescent; the seqlock witness behind
    /// [`crate::DftService::report`]).
    pub e2e_count: u64,
    /// Span events accepted into the trace ring over the engine's life.
    pub trace_events_recorded: u64,
    /// Span events evicted unread because the ring was full.
    pub trace_events_dropped: u64,
    /// Highest depth each queue shard ever reached (index = shard).
    pub queue_high_watermarks: Vec<usize>,
}

impl TelemetrySnapshot {
    /// The snapshot for one class, if any job of it was recorded.
    pub fn class(&self, class: &WorkloadClass) -> Option<&ClassSnapshot> {
        self.classes.iter().find(|c| c.class == *class)
    }

    /// One stage's histogram merged across every class.
    pub fn stage_total(&self, stage: Stage) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty();
        for c in &self.classes {
            total.merge(c.stage(stage));
        }
        total
    }

    /// Total jobs with an end-to-end record, summed over classes.
    pub fn jobs_recorded(&self) -> u64 {
        self.stage_total(Stage::EndToEnd).count()
    }

    /// Rolls another engine's snapshot into `self` — the
    /// federation-wide telemetry view. Unlike the percentile rows in a
    /// merged [`crate::ServeReport`] (which can only take conservative
    /// maxima), this merges the **underlying histograms** bucket-wise
    /// ([`HistogramSnapshot::merge`]), so quantiles of the result are
    /// true federated quantiles. Uptime takes the max (replicas run
    /// concurrently), counters sum, and queue high-watermarks
    /// concatenate in absorb order (replica-major), matching the merged
    /// report's shard vectors.
    pub fn absorb(&mut self, other: &TelemetrySnapshot) {
        self.uptime_s = self.uptime_s.max(other.uptime_s);
        for theirs in &other.classes {
            match self.classes.iter_mut().find(|c| c.class == theirs.class) {
                Some(mine) => {
                    for (a, b) in mine.stages.iter_mut().zip(&theirs.stages) {
                        a.merge(b);
                    }
                    for (a, b) in mine.targets.iter_mut().zip(&theirs.targets) {
                        a.merge(b);
                    }
                }
                None => self.classes.push(theirs.clone()),
            }
        }
        self.classes.sort_by_key(|c| c.class);
        self.e2e_count += other.e2e_count;
        self.trace_events_recorded += other.trace_events_recorded;
        self.trace_events_dropped += other.trace_events_dropped;
        self.queue_high_watermarks
            .extend_from_slice(&other.queue_high_watermarks);
    }

    /// Serializes the snapshot to a JSON object (hand-rolled — every
    /// key and class label is machine-generated, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"uptime_s\": {:.6}, \"e2e_count\": {}, \"trace_events_recorded\": {}, \
             \"trace_events_dropped\": {}, \"queue_high_watermarks\": [",
            self.uptime_s, self.e2e_count, self.trace_events_recorded, self.trace_events_dropped,
        ));
        for (i, w) in self.queue_high_watermarks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&w.to_string());
        }
        out.push_str("], \"classes\": [");
        for (ci, c) in self.classes.iter().enumerate() {
            if ci > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"class\": \"{}\", \"kind\": \"{}\", \"atoms\": {}, \"iterations\": {}, \
                 \"stages\": {{",
                c.class, c.class.kind, c.class.atoms, c.class.iterations,
            ));
            for (si, stage) in Stage::ALL.iter().enumerate() {
                if si > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": ", stage.label()));
                c.stage(*stage).json_into(&mut out);
            }
            out.push_str("}, \"execute_by_target\": {");
            for (ti, target) in PlacementTarget::ALL.iter().enumerate() {
                if ti > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": ", target.label()));
                c.target(*target).json_into(&mut out);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Every value maps into range, and indices never decrease.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
        }
        // The linear→log seam has no gap.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_max_bounds_its_bucket() {
        for v in [0u64, 1, 7, 15, 16, 17, 31, 32, 100, 1000, 123_456, 1 << 40] {
            let i = bucket_index(v);
            assert!(bucket_max(i) >= v, "bucket_max({i}) < {v}");
            if i + 1 < BUCKETS {
                assert!(
                    bucket_max(i) < bucket_max(i + 1),
                    "bucket bounds overlap at {i}"
                );
            }
        }
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10_000);
        // True p50 of 1..=10000 is 5000; the estimate overshoots by at
        // most one sub-bucket (12.5%).
        let p50 = s.p50_ns();
        assert!((5000..=5000 + 5000 / 8).contains(&p50), "p50 = {p50}");
        let p99 = s.p99_ns();
        assert!((9900..=9900 + 9900 / 8).contains(&p99), "p99 = {p99}");
        // The max is exact and caps the top quantile.
        assert_eq!(s.max_ns(), 10_000);
        assert_eq!(s.quantile_ns(1.0), 10_000);
    }

    #[test]
    fn snapshots_merge_bucketwise() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in 0..100u64 {
            a.record_ns(v);
            b.record_ns(v + 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.max_ns(), 1099);
        assert_eq!(m.sum_ns(), (0..100u64).sum::<u64>() as u128 * 2 + 100_000);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.quantile_ns(1.0), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn telemetry_registry_keys_by_class_and_counts_e2e() {
        let t = Telemetry::new(16);
        let md = WorkloadClass {
            kind: crate::job::JobKind::MdSegment,
            atoms: 64,
            iterations: 10,
        };
        let scf = WorkloadClass {
            kind: crate::job::JobKind::GroundState,
            atoms: 8,
            iterations: 4,
        };
        t.record(md, Stage::QueueWait, Duration::from_micros(3));
        t.record_end_to_end(md, Priority::Bulk, Duration::from_micros(9));
        t.record_end_to_end(scf, Priority::Interactive, Duration::from_micros(2));
        assert_eq!(t.e2e_count(), 2);
        let snap = t.snapshot();
        assert_eq!(snap.classes.len(), 2);
        // Sorted by class: GroundState orders before MdSegment.
        assert_eq!(snap.classes[0].class, scf);
        assert_eq!(snap.class(&md).unwrap().stage(Stage::QueueWait).count(), 1);
        assert_eq!(snap.stage_total(Stage::EndToEnd).count(), 2);
        assert_eq!(snap.jobs_recorded(), 2);
        let rows = t.class_latency();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.jobs == 1 && r.p50_s > 0.0));
        let prio = t.priority_latency();
        assert_eq!(prio.len(), 3, "one row per priority, always");
        assert_eq!(prio[0].priority, Priority::Interactive);
        assert_eq!(prio[0].jobs, 1);
        assert_eq!(prio[1].jobs, 0, "standard unused");
        assert_eq!(prio[2].jobs, 1);
        assert!(prio[2].p99_s >= prio[0].p99_s);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let t = Telemetry::new(16);
        let class = WorkloadClass {
            kind: crate::job::JobKind::TdaSpectrum,
            atoms: 16,
            iterations: 1,
        };
        t.record(class, Stage::Execute, Duration::from_millis(2));
        t.record_end_to_end(class, Priority::Standard, Duration::from_millis(3));
        let mut snap = t.snapshot();
        snap.queue_high_watermarks = vec![4, 7];
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"tda/Si_16x1\""));
        assert!(json.contains("\"queue_wait\""));
        assert!(json.contains("\"execute_by_target\""));
        assert!(json.contains("\"queue_high_watermarks\": [4, 7]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }
}
