//! Per-tenant in-flight accounting for fair-share admission control.
//!
//! A [`TenantTable`] hangs off the engine and counts in-flight jobs per
//! [`TenantId`]. Admission takes a [`TenantSlot`] (RAII: dropping it
//! releases the count), so every exit path — completion, failure,
//! cancellation, deadline drop, shutdown sweep — frees the slot without
//! bespoke bookkeeping. With no quota configured the table is inert and
//! acquisition is free.

use crate::job::TenantId;
use crate::queue::SubmitError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Shared per-tenant in-flight counters, bounded by an optional quota.
pub(crate) struct TenantTable {
    quota: Option<u64>,
    inflight: Mutex<HashMap<TenantId, u64>>,
}

impl TenantTable {
    /// A table enforcing `quota` in-flight jobs per tenant, or nothing
    /// when `None`.
    pub(crate) fn new(quota: Option<u64>) -> Self {
        TenantTable {
            quota,
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Claims one in-flight slot for `tenant`. `Ok(None)` when quotas
    /// are disabled (nothing to release); `Ok(Some(slot))` pins the
    /// count until the slot drops.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QuotaExceeded`] when the tenant is already at its
    /// quota.
    pub(crate) fn try_acquire(
        self: &Arc<Self>,
        tenant: TenantId,
    ) -> Result<Option<TenantSlot>, SubmitError> {
        let Some(quota) = self.quota else {
            return Ok(None);
        };
        let mut map = self.inflight.lock().unwrap();
        let count = map.entry(tenant).or_insert(0);
        if *count >= quota {
            return Err(SubmitError::QuotaExceeded { tenant });
        }
        *count += 1;
        Ok(Some(TenantSlot {
            table: Arc::clone(self),
            tenant,
        }))
    }

    /// Current in-flight count for `tenant` (0 when unknown).
    #[cfg(test)]
    pub(crate) fn inflight(&self, tenant: TenantId) -> u64 {
        self.inflight
            .lock()
            .unwrap()
            .get(&tenant)
            .copied()
            .unwrap_or(0)
    }
}

/// One claimed in-flight slot; dropping it releases the tenant's count.
pub(crate) struct TenantSlot {
    table: Arc<TenantTable>,
    tenant: TenantId,
}

impl Drop for TenantSlot {
    fn drop(&mut self) {
        let mut map = self.table.inflight.lock().unwrap();
        if let Some(count) = map.get_mut(&self.tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                map.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_disabled_always_admits() {
        let table = Arc::new(TenantTable::new(None));
        for _ in 0..1000 {
            assert!(table.try_acquire(TenantId(1)).unwrap().is_none());
        }
        assert_eq!(table.inflight(TenantId(1)), 0);
    }

    #[test]
    fn quota_bounds_each_tenant_independently() {
        let table = Arc::new(TenantTable::new(Some(2)));
        let a1 = table.try_acquire(TenantId(1)).unwrap();
        let _a2 = table.try_acquire(TenantId(1)).unwrap();
        assert!(matches!(
            table.try_acquire(TenantId(1)),
            Err(SubmitError::QuotaExceeded {
                tenant: TenantId(1)
            })
        ));
        // Another tenant is unaffected.
        let _b1 = table.try_acquire(TenantId(2)).unwrap();
        assert_eq!(table.inflight(TenantId(1)), 2);
        // Dropping a slot reopens the quota.
        drop(a1);
        assert_eq!(table.inflight(TenantId(1)), 1);
        assert!(table.try_acquire(TenantId(1)).is_ok());
    }
}
