//! Client-facing completion handles.
//!
//! Submitting a job yields a [`JobTicket`]; the worker pool fulfills it
//! exactly once. Tickets are cheap `Arc` handles — clone freely, and
//! complete through whichever style fits the caller:
//!
//! * **Blocking** — [`JobTicket::wait`] / [`JobTicket::wait_timeout`]
//!   park the calling thread on a condvar (the original API, unchanged).
//! * **Polling** — [`JobTicket::try_result`] / [`JobTicket::is_done`].
//! * **Async** — [`JobTicket::future`] yields a [`TicketFuture`]
//!   implementing [`Future`]; drive it with [`crate::exec::block_on`],
//!   combine many with [`crate::exec::join_all`] / [`crate::exec::race`],
//!   or hand it to any external executor. `ticket.await` works too
//!   ([`IntoFuture`]).
//!
//! All three styles are views over one state machine: a mutex-guarded
//! result slot plus a registry of [`Waker`]s. The lost-wakeup argument
//! is a single lock: `poll` checks the slot and registers its waker
//! under the same mutex acquisition, and fulfillment writes
//! the slot and drains the registry under that mutex — so a waker
//! registered before the transition is in the drained set (woken
//! exactly once, outside the lock), and a poll that misses the drain
//! observes the filled slot and returns `Ready`. There is no window in
//! which a future can park without either being woken or seeing the
//! result.

use crate::fingerprint::Fingerprint;
use crate::job::JobError;
use crate::trace::TraceId;
use crate::worker::JobOutcome;
use std::future::{Future, IntoFuture};
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

type JobResult = Result<Arc<JobOutcome>, JobError>;

/// Result slot + waker registry; every completion style is a view of
/// this one state machine.
struct TicketState {
    /// `None` while pending; written exactly once by `fulfill`.
    result: Option<JobResult>,
    /// Wakers registered by in-flight futures and session forwarders,
    /// keyed so a re-polled future *updates* its entry instead of
    /// duplicating it, and a dropped future can remove its own.
    wakers: Vec<(u64, Waker)>,
    /// Allocator for waker-registry keys; key allocation is serialized
    /// by the state lock, like every other registry access.
    next_waker_key: u64,
    /// Owner-installed hook that runs iff a [`JobTicket::cancel`] call
    /// wins the resolution race — the federated router tombstones the
    /// routing log through it so a replayed replica can never resurrect
    /// a cancelled job. Dropped (never run) when any other resolution
    /// wins. Runs outside the state lock.
    cancel_hook: Option<Box<dyn FnOnce() + Send>>,
}

struct TicketInner {
    state: Mutex<TicketState>,
    done: Condvar,
}

/// Handle to one submitted job's eventual result.
#[derive(Clone)]
pub struct JobTicket {
    fingerprint: Fingerprint,
    trace: TraceId,
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("fingerprint", &self.fingerprint)
            .field("trace", &self.trace)
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobTicket {
    /// Fresh unfulfilled ticket for a job with the given fingerprint,
    /// tagged with its engine-assigned trace id.
    pub(crate) fn pending(fingerprint: Fingerprint, trace: TraceId) -> Self {
        JobTicket {
            fingerprint,
            trace,
            inner: Arc::new(TicketInner {
                state: Mutex::new(TicketState {
                    result: None,
                    wakers: Vec::new(),
                    next_waker_key: 0,
                    cancel_hook: None,
                }),
                done: Condvar::new(),
            }),
        }
    }

    /// Ticket already fulfilled (cache serve on the submission path).
    pub(crate) fn ready(
        fingerprint: Fingerprint,
        trace: TraceId,
        outcome: Arc<JobOutcome>,
    ) -> Self {
        let t = JobTicket::pending(fingerprint, trace);
        t.fulfill(Ok(outcome));
        t
    }

    /// Manual-resolution pair: a pending ticket plus the handle that
    /// fulfills it. This is how adapters, executors, and tests drive the
    /// completion state machine without a running [`crate::DftService`]
    /// (the `serve_properties` lost-wakeup suite lives on it). The
    /// ticket carries [`TraceId::DETACHED`] — trace ids belong to
    /// engine admissions.
    pub fn promise(fingerprint: Fingerprint) -> (JobTicket, TicketResolver) {
        let ticket = JobTicket::pending(fingerprint, TraceId::DETACHED);
        let resolver = TicketResolver {
            ticket: Some(ticket.clone()),
        };
        (ticket, resolver)
    }

    /// The job's content fingerprint (also the cache key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// The engine-assigned trace id ([`TraceId::DETACHED`] for tickets
    /// created outside an engine) — the key joining this submission to
    /// its span events in a [`crate::TraceCollector`] drain.
    pub fn trace_id(&self) -> TraceId {
        self.trace
    }

    /// Delivers the result and wakes every waiter — condvar sleepers and
    /// registered future wakers alike. First fulfillment wins; later
    /// calls are ignored (a ticket resolves exactly once), so each
    /// registered waker is woken **exactly once** over the ticket's
    /// lifetime. Wakers run outside the state lock: a waker that
    /// immediately re-polls (or forwards into a session channel) can
    /// never deadlock against the registry.
    pub(crate) fn fulfill(&self, result: JobResult) {
        let _ = self.fulfill_first(result);
    }

    /// [`JobTicket::fulfill`] that reports whether *this* call performed
    /// the pending→done transition. Cancellation rides on the return
    /// value: only the caller that wins the race may treat the job as
    /// cancelled.
    pub(crate) fn fulfill_first(&self, result: JobResult) -> bool {
        self.resolve(result, false)
    }

    /// The single pending→done transition. Takes the waker registry
    /// *and* the cancel hook under the state lock; the hook runs (on
    /// the cancellation path) or drops (any other resolution) before
    /// the wakers fire, so a cancel's side effects — e.g. tombstoning a
    /// federated routing log — are visible to every woken observer.
    /// Both run outside the lock: neither can deadlock back into the
    /// registry.
    fn resolve(&self, result: JobResult, is_cancel: bool) -> bool {
        let (wakers, hook) = {
            let mut st = self.inner.state.lock().unwrap();
            if st.result.is_some() {
                return false;
            }
            st.result = Some(result);
            self.inner.done.notify_all();
            (std::mem::take(&mut st.wakers), st.cancel_hook.take())
        };
        match hook {
            Some(hook) if is_cancel => hook(),
            other => drop(other),
        }
        for (_, waker) in wakers {
            waker.wake();
        }
        true
    }

    /// Installs the hook [`JobTicket::cancel`] runs if (and only if) it
    /// wins the resolution race. At most one hook per ticket (a second
    /// install replaces the first); ignored once the ticket is done —
    /// the race it guards is already decided.
    pub(crate) fn set_cancel_hook(&self, hook: Box<dyn FnOnce() + Send>) {
        let mut st = self.inner.state.lock().unwrap();
        if st.result.is_none() {
            st.cancel_hook = Some(hook);
        }
    }

    /// Cancels the job if it has not resolved yet, fulfilling the ticket
    /// with [`JobError::Cancelled`]. Returns whether the cancellation
    /// won the race (`false` means the job already completed, failed, or
    /// was cancelled by someone else — the existing result stands).
    ///
    /// A still-queued job becomes a tombstone: the worker (or the
    /// shutdown sweep) that later dequeues it observes the resolved
    /// ticket, counts the job as cancelled, and emits its progress and
    /// trace exit events instead of executing it. A job that a worker
    /// has already started executes to completion, but its result is
    /// discarded — the ticket keeps the `Cancelled` outcome. Nothing is
    /// released from [`crate::ClusterView`]: queued jobs reserve nothing.
    pub fn cancel(&self) -> bool {
        self.resolve(Err(JobError::Cancelled), true)
    }

    /// Registers an external completion waker: woken exactly once when
    /// the ticket resolves — immediately (on this thread) if it already
    /// has. The session completion path rides on this; unlike a
    /// [`TicketFuture`] registration the entry is never replaced or
    /// deregistered.
    pub(crate) fn on_done(&self, waker: Waker) {
        let mut st = self.inner.state.lock().unwrap();
        if st.result.is_some() {
            drop(st);
            waker.wake();
            return;
        }
        let key = st.next_waker_key;
        st.next_waker_key += 1;
        st.wakers.push((key, waker));
    }

    /// True once a result (or error) is available.
    pub fn is_done(&self) -> bool {
        self.inner.state.lock().unwrap().result.is_some()
    }

    /// Non-blocking result check.
    pub fn try_result(&self) -> Option<JobResult> {
        self.inner.state.lock().unwrap().result.clone()
    }

    /// A [`Future`] view of this ticket. Many futures can observe one
    /// ticket; each registers its own waker and resolves to a clone of
    /// the shared result.
    pub fn future(&self) -> TicketFuture {
        TicketFuture {
            ticket: self.clone(),
            key: None,
        }
    }

    /// Blocks until the job resolves.
    ///
    /// # Errors
    ///
    /// Propagates the job's [`JobError`] when execution failed.
    pub fn wait(&self) -> JobResult {
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(result) = st.result.as_ref() {
                return result.clone();
            }
            st = self.inner.done.wait(st).unwrap();
        }
    }

    /// [`JobTicket::wait`] with a fixed deadline `timeout` from now;
    /// `None` on timeout (spurious wakeups do not extend it).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(result) = st.result.as_ref() {
                return Some(result.clone());
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _res) = self.inner.done.wait_timeout(st, remaining).unwrap();
            st = guard;
        }
    }

    /// Wakers currently registered (tests assert deregistration).
    #[cfg(test)]
    fn registered_wakers(&self) -> usize {
        self.inner.state.lock().unwrap().wakers.len()
    }
}

impl IntoFuture for JobTicket {
    type Output = JobResult;
    type IntoFuture = TicketFuture;

    fn into_future(self) -> TicketFuture {
        self.future()
    }
}

impl IntoFuture for &JobTicket {
    type Output = JobResult;
    type IntoFuture = TicketFuture;

    fn into_future(self) -> TicketFuture {
        self.future()
    }
}

/// The fulfilling half of [`JobTicket::promise`].
///
/// Consuming [`TicketResolver::fulfill`] resolves the paired ticket; if
/// the resolver is dropped unfulfilled, the ticket fails with
/// [`JobError::ShutDown`] so no waiter can hang on an abandoned promise.
#[derive(Debug)]
pub struct TicketResolver {
    /// Taken on fulfillment, so the Drop guard fires only for an
    /// abandoned resolver (and the ticket handle is always released —
    /// never leaked).
    ticket: Option<JobTicket>,
}

impl TicketResolver {
    /// Resolves the paired ticket (exactly once; the consuming signature
    /// makes double-fulfillment unrepresentable).
    pub fn fulfill(mut self, result: JobResult) {
        if let Some(ticket) = self.ticket.take() {
            ticket.fulfill(result);
        }
    }

    /// The paired ticket's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.ticket
            .as_ref()
            .expect("resolver holds its ticket until fulfilled")
            .fingerprint()
    }
}

impl Drop for TicketResolver {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            ticket.fulfill(Err(JobError::ShutDown));
        }
    }
}

/// [`Future`] view of a [`JobTicket`], resolving to the job's result.
///
/// Created by [`JobTicket::future`] (or `ticket.await` via
/// [`IntoFuture`]). Runtime-agnostic: poll it from
/// [`crate::exec::block_on`], [`crate::exec::join_all`], or any executor.
/// Re-polling *updates* this future's registered waker in place (no
/// duplicate registrations), and dropping the future before completion
/// deregisters it, so abandoned futures leak nothing and are never woken.
#[derive(Debug)]
pub struct TicketFuture {
    ticket: JobTicket,
    /// Registry key of this future's waker entry, allocated on the first
    /// `Pending` poll.
    key: Option<u64>,
}

impl TicketFuture {
    /// The underlying ticket's fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.ticket.fingerprint()
    }

    /// The underlying ticket (e.g. to fall back to a blocking wait).
    pub fn ticket(&self) -> &JobTicket {
        &self.ticket
    }
}

impl Future for TicketFuture {
    type Output = JobResult;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<JobResult> {
        let this = &mut *self;
        let mut st = this.ticket.inner.state.lock().unwrap();
        if let Some(result) = st.result.as_ref() {
            // fulfill() drained the registry, so there is no entry left
            // to deregister — forget the key so Drop skips the lock scan.
            let result = result.clone();
            this.key = None;
            return Poll::Ready(result);
        }
        let key = match this.key {
            Some(key) => key,
            None => {
                let key = st.next_waker_key;
                st.next_waker_key += 1;
                this.key = Some(key);
                key
            }
        };
        match st.wakers.iter_mut().find(|(k, _)| *k == key) {
            Some(entry) => entry.1.clone_from(cx.waker()),
            None => st.wakers.push((key, cx.waker().clone())),
        }
        Poll::Pending
    }
}

impl Drop for TicketFuture {
    fn drop(&mut self) {
        // Deregister this future's waker so an abandoned future is never
        // woken and the registry cannot grow with dead entries. No-op
        // when the future resolved (key cleared) or was never polled.
        if let Some(key) = self.key {
            let mut st = self.ticket.inner.state.lock().unwrap();
            st.wakers.retain(|(k, _)| *k != key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::block_on;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::task::Wake;
    use std::thread;

    fn fp() -> Fingerprint {
        Fingerprint(42)
    }

    struct CountingWaker {
        wakes: AtomicUsize,
    }

    impl CountingWaker {
        fn new() -> Arc<Self> {
            Arc::new(CountingWaker {
                wakes: AtomicUsize::new(0),
            })
        }

        fn count(&self) -> usize {
            self.wakes.load(AtomicOrdering::SeqCst)
        }
    }

    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.wakes.fetch_add(1, AtomicOrdering::SeqCst);
        }
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let waiter = {
            let t = t.clone();
            thread::spawn(move || t.wait())
        };
        thread::sleep(Duration::from_millis(10));
        assert!(!t.is_done());
        t.fulfill(Err(JobError::ShutDown));
        assert_eq!(waiter.join().unwrap().unwrap_err(), JobError::ShutDown);
    }

    #[test]
    fn first_fulfillment_wins() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        t.fulfill(Err(JobError::ShutDown));
        t.fulfill(Err(JobError::Numerics("later".into())));
        assert_eq!(t.wait().unwrap_err(), JobError::ShutDown);
    }

    #[test]
    fn wait_timeout_expires_cleanly() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        assert!(t.wait_timeout(Duration::from_millis(10)).is_none());
        t.fulfill(Err(JobError::ShutDown));
        assert!(t.wait_timeout(Duration::from_millis(10)).is_some());
    }

    #[test]
    fn future_resolves_when_fulfilled_from_another_thread() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let fulfiller = {
            let t = t.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                t.fulfill(Err(JobError::ShutDown));
            })
        };
        assert_eq!(block_on(t.future()).unwrap_err(), JobError::ShutDown);
        // IntoFuture works on both the handle and a reference to it.
        assert_eq!(block_on(&t).unwrap_err(), JobError::ShutDown);
        fulfiller.join().unwrap();
    }

    #[test]
    fn registered_waker_is_woken_exactly_once() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        let mut cx = Context::from_waker(&waker);
        let mut fut = t.future();
        // Two polls, one registration: the second poll updates in place.
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert_eq!(t.registered_wakers(), 1);
        t.fulfill(Err(JobError::ShutDown));
        assert_eq!(counting.count(), 1);
        // Fulfilling again (ignored) must not re-wake.
        t.fulfill(Err(JobError::Numerics("dup".into())));
        assert_eq!(counting.count(), 1);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_ready());
        assert_eq!(t.registered_wakers(), 0);
    }

    #[test]
    fn dropped_future_deregisters_and_is_never_woken() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let counting = CountingWaker::new();
        let waker = Waker::from(Arc::clone(&counting));
        let mut cx = Context::from_waker(&waker);
        let mut fut = t.future();
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert_eq!(t.registered_wakers(), 1);
        drop(fut);
        assert_eq!(t.registered_wakers(), 0);
        t.fulfill(Err(JobError::ShutDown));
        assert_eq!(counting.count(), 0, "dropped future must not be woken");
    }

    #[test]
    fn on_done_fires_immediately_for_ready_tickets() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        t.fulfill(Err(JobError::ShutDown));
        let counting = CountingWaker::new();
        t.on_done(Waker::from(Arc::clone(&counting)));
        assert_eq!(counting.count(), 1);
    }

    #[test]
    fn promise_resolver_fulfills_and_drop_fails_the_ticket() {
        let (t, resolver) = JobTicket::promise(fp());
        assert_eq!(resolver.fingerprint(), t.fingerprint());
        resolver.fulfill(Err(JobError::Numerics("boom".into())));
        assert_eq!(t.wait().unwrap_err(), JobError::Numerics("boom".into()));

        let (t, resolver) = JobTicket::promise(fp());
        drop(resolver);
        assert_eq!(
            t.wait().unwrap_err(),
            JobError::ShutDown,
            "abandoned promise fails instead of hanging"
        );
    }

    #[test]
    fn cancel_wins_only_while_pending_and_wakes_once() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let counting = CountingWaker::new();
        t.on_done(Waker::from(Arc::clone(&counting)));
        assert!(t.cancel(), "pending ticket cancels");
        assert_eq!(t.wait().unwrap_err(), JobError::Cancelled);
        assert_eq!(counting.count(), 1);
        assert!(!t.cancel(), "second cancel loses");
        t.fulfill(Err(JobError::ShutDown));
        assert_eq!(
            t.wait().unwrap_err(),
            JobError::Cancelled,
            "cancellation outcome stands against a late fulfill"
        );
        assert_eq!(counting.count(), 1, "no waker fires twice");
    }

    #[test]
    fn cancel_loses_to_a_completed_ticket() {
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        t.fulfill(Err(JobError::Numerics("done first".into())));
        assert!(!t.cancel());
        assert_eq!(
            t.wait().unwrap_err(),
            JobError::Numerics("done first".into())
        );
    }

    #[test]
    fn cancel_hook_runs_only_when_cancel_wins() {
        // Winning cancel runs the hook exactly once.
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        t.set_cancel_hook(Box::new(move || {
            hook_fired.fetch_add(1, AtomicOrdering::SeqCst);
        }));
        assert!(t.cancel());
        assert_eq!(fired.load(AtomicOrdering::SeqCst), 1);
        assert!(!t.cancel(), "second cancel loses");
        assert_eq!(fired.load(AtomicOrdering::SeqCst), 1, "hook never reruns");

        // A completion beats the cancel: the hook is dropped unrun.
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        t.set_cancel_hook(Box::new(move || {
            hook_fired.fetch_add(1, AtomicOrdering::SeqCst);
        }));
        t.fulfill(Err(JobError::ShutDown));
        assert!(!t.cancel());
        assert_eq!(
            fired.load(AtomicOrdering::SeqCst),
            0,
            "losing cancel must not run the hook"
        );

        // Installing on a done ticket is a no-op.
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        t.fulfill(Err(JobError::ShutDown));
        let fired = Arc::new(AtomicUsize::new(0));
        let hook_fired = Arc::clone(&fired);
        t.set_cancel_hook(Box::new(move || {
            hook_fired.fetch_add(1, AtomicOrdering::SeqCst);
        }));
        assert!(!t.cancel());
        assert_eq!(fired.load(AtomicOrdering::SeqCst), 0);
    }

    #[test]
    fn cancel_hook_side_effects_precede_waker_delivery() {
        // The federation's tombstone ordering: when the hook fires, its
        // effect must be observable from every waker the cancel wakes.
        let t = JobTicket::pending(fp(), TraceId::DETACHED);
        let order = Arc::new(Mutex::new(Vec::new()));
        struct OrderWaker {
            order: Arc<Mutex<Vec<&'static str>>>,
        }
        impl Wake for OrderWaker {
            fn wake(self: Arc<Self>) {
                self.order.lock().unwrap().push("waker");
            }
        }
        t.on_done(Waker::from(Arc::new(OrderWaker {
            order: Arc::clone(&order),
        })));
        let hook_order = Arc::clone(&order);
        t.set_cancel_hook(Box::new(move || {
            hook_order.lock().unwrap().push("hook");
        }));
        assert!(t.cancel());
        assert_eq!(*order.lock().unwrap(), vec!["hook", "waker"]);
    }

    #[test]
    fn resolver_releases_its_ticket_handle_on_fulfill() {
        // Regression: fulfill() must not leak the resolver's Arc handle
        // (a long-lived adapter makes one promise per request).
        let (t, resolver) = JobTicket::promise(fp());
        assert_eq!(Arc::strong_count(&t.inner), 2);
        resolver.fulfill(Err(JobError::ShutDown));
        assert_eq!(
            Arc::strong_count(&t.inner),
            1,
            "fulfilled resolver released its handle"
        );
    }
}
