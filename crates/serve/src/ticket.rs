//! Client-facing completion handles.
//!
//! Submitting a job yields a [`JobTicket`]; the caller blocks on
//! [`JobTicket::wait`] (or polls [`JobTicket::try_result`]) while the
//! worker pool fulfills it. Tickets are cheap `Arc` handles — clone
//! freely, wait from any thread.

use crate::fingerprint::Fingerprint;
use crate::job::JobError;
use crate::worker::JobOutcome;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

type JobResult = Result<Arc<JobOutcome>, JobError>;

struct TicketInner {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

/// Handle to one submitted job's eventual result.
#[derive(Clone)]
pub struct JobTicket {
    fingerprint: Fingerprint,
    inner: Arc<TicketInner>,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("fingerprint", &self.fingerprint)
            .field("done", &self.is_done())
            .finish()
    }
}

impl JobTicket {
    /// Fresh unfulfilled ticket for a job with the given fingerprint.
    pub(crate) fn pending(fingerprint: Fingerprint) -> Self {
        JobTicket {
            fingerprint,
            inner: Arc::new(TicketInner {
                slot: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    /// Ticket already fulfilled (cache serve on the submission path).
    pub(crate) fn ready(fingerprint: Fingerprint, outcome: Arc<JobOutcome>) -> Self {
        let t = JobTicket::pending(fingerprint);
        t.fulfill(Ok(outcome));
        t
    }

    /// The job's content fingerprint (also the cache key).
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Delivers the result and wakes waiters. First fulfillment wins;
    /// later calls are ignored (a ticket resolves exactly once).
    pub(crate) fn fulfill(&self, result: JobResult) {
        let mut slot = self.inner.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(result);
            self.inner.done.notify_all();
        }
    }

    /// True once a result (or error) is available.
    pub fn is_done(&self) -> bool {
        self.inner.slot.lock().unwrap().is_some()
    }

    /// Non-blocking result check.
    pub fn try_result(&self) -> Option<JobResult> {
        self.inner.slot.lock().unwrap().clone()
    }

    /// Blocks until the job resolves.
    ///
    /// # Errors
    ///
    /// Propagates the job's [`JobError`] when execution failed.
    pub fn wait(&self) -> JobResult {
        let mut slot = self.inner.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.inner.done.wait(slot).unwrap();
        }
    }

    /// [`JobTicket::wait`] with a fixed deadline `timeout` from now;
    /// `None` on timeout (spurious wakeups do not extend it).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        let deadline = std::time::Instant::now() + timeout;
        let mut slot = self.inner.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, _res) = self.inner.done.wait_timeout(slot, remaining).unwrap();
            slot = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fp() -> Fingerprint {
        Fingerprint(42)
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let t = JobTicket::pending(fp());
        let waiter = {
            let t = t.clone();
            thread::spawn(move || t.wait())
        };
        thread::sleep(Duration::from_millis(10));
        assert!(!t.is_done());
        t.fulfill(Err(JobError::ShutDown));
        assert_eq!(waiter.join().unwrap().unwrap_err(), JobError::ShutDown);
    }

    #[test]
    fn first_fulfillment_wins() {
        let t = JobTicket::pending(fp());
        t.fulfill(Err(JobError::ShutDown));
        t.fulfill(Err(JobError::Numerics("later".into())));
        assert_eq!(t.wait().unwrap_err(), JobError::ShutDown);
    }

    #[test]
    fn wait_timeout_expires_cleanly() {
        let t = JobTicket::pending(fp());
        assert!(t.wait_timeout(Duration::from_millis(10)).is_none());
        t.fulfill(Err(JobError::ShutDown));
        assert!(t.wait_timeout(Duration::from_millis(10)).is_some());
    }
}
