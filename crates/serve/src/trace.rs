//! Per-job trace spans: the timeline behind the histograms.
//!
//! Every submission is assigned a [`TraceId`] at admission; workers
//! emit a [`TraceEvent`] at each lifecycle transition — enqueue, steal,
//! batch formation, planner consult, reservation hold, numerics, cache
//! store/hit, ticket fulfill — into one bounded, drop-oldest,
//! drop-counting ring shared by all [`TraceCollector`] handles.
//!
//! Publication reuses the subscriber-gated idiom from
//! [`crate::progress`]: with no collector attached the publish path is
//! **one relaxed atomic load** and the event is never constructed
//! (workers check [`crate::telemetry::Telemetry::traced`] before
//! assembling one), so unwatched engines pay nothing for the tracing
//! machinery. Stage *histograms* ([`crate::telemetry`]) are always on;
//! only the per-event timeline is gated.
//!
//! Unlike the progress bus, collectors poll ([`TraceCollector::drain`])
//! rather than block: traces are consumed after a run (or periodically
//! by an exporter), not awaited event-by-event, so the ring carries no
//! condvar.
//!
//! # Timestamps and the Chrome export
//!
//! Event timestamps are nanoseconds since the engine's telemetry
//! epoch, assigned from a single monotonic clock, so events from
//! different workers order consistently. [`chrome_trace_json`] renders
//! a batch of events in the Chrome trace-event format: open
//! `chrome://tracing` (or <https://ui.perfetto.dev>) and load the file
//! to see one lane per job (`tid` = trace id), with spans for
//! queue-wait, planning, reservation hold, numerics, and fulfillment,
//! and instants for cache hits and stores.

use crate::batch::BatchOrigin;
use crate::cache::HitTier;
use crate::fingerprint::Fingerprint;
use crate::job::WorkloadClass;
use crate::telemetry::PlacementTarget;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Identity of one submission's trace, unique per engine instance
/// (allocated from a counter at admission; `0` marks spans created
/// outside an engine, e.g. [`crate::JobTicket::promise`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The id carried by tickets never admitted to an engine.
    pub const DETACHED: TraceId = TraceId(0);
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What lifecycle transition a [`TraceEvent`] marks. Span kinds carry a
/// duration; instant kinds have `dur_ns == 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// Admission accepted the job onto a queue shard (instant).
    Enqueue {
        /// The shard the submission routed to.
        shard: usize,
    },
    /// The job travelled in a run stolen from a victim shard (instant,
    /// emitted per stolen job at dequeue).
    Steal {
        /// The shard the run was taken from.
        from_shard: usize,
    },
    /// The job's dequeued chunk was grouped into a class batch
    /// (instant, one per member).
    BatchForm {
        /// Members in the batch.
        size: usize,
        /// Home drain or steal.
        origin: BatchOrigin,
    },
    /// Planner consultation + modeled engine run (span; emitted for
    /// the batch member that triggered planning — riders share the
    /// resulting decision without a consult of their own).
    PlannerConsult,
    /// The batch's reservation on the shared cluster view, from grant
    /// to release (span, emitted at release on the leader's lane).
    ReservationHold,
    /// The numeric kernels (span; `dur` = the outcome's wall-clock).
    Numerics {
        /// Where the plan put the work.
        target: PlacementTarget,
    },
    /// The outcome was stored into the result cache (instant).
    CacheStore,
    /// The job was served without executing (instant).
    CacheHit {
        /// Which lookup tier produced the result.
        tier: HitTier,
    },
    /// The submitter's ticket resolved (span: outcome-ready →
    /// fulfilled). Every trace ends with exactly one of these, on
    /// every path — executed, cache-served, rejected, failed, panic,
    /// drop-guard.
    TicketFulfill {
        /// Whether the job succeeded.
        ok: bool,
        /// Whether the result came from a cache/dedup hit.
        cached: bool,
    },
    /// The job waited in its queue shard (span: enqueue → its batch
    /// started processing).
    QueueWait,
    /// A dispatcher consumed the job's cancellation tombstone instead of
    /// executing it (instant; the lane still ends with a `TicketFulfill`).
    Cancelled,
    /// The job's wall-clock deadline had passed by the time a worker
    /// dequeued it, so it was dropped unexecuted (instant; the lane
    /// still ends with a `TicketFulfill`).
    DeadlineDrop,
    /// A same-class batch ran through the fused execution path: one
    /// shared-operand setup served every member's kernels (span,
    /// emitted once per fused batch on the leader's lane, covering the
    /// whole member loop).
    FusedExec {
        /// Jobs that executed through the shared operand.
        members: usize,
    },
    /// A workflow node's dependency wait, from workflow submission to
    /// DAG release into the submit path (span, emitted at release on
    /// the released job's trace lane — the workflow id it carries is
    /// what stitches node lanes into one graph).
    DagWait {
        /// Engine-unique workflow id the node belongs to.
        workflow: u64,
        /// Node index inside its [`crate::WorkflowSpec`].
        node: usize,
    },
    /// A workflow node orphaned before release: a parent failed or the
    /// engine shut down first (instant; orphaned nodes never reach a
    /// queue, so this is the only event their ticket ever emits).
    DagOrphan {
        /// Engine-unique workflow id the node belongs to.
        workflow: u64,
        /// Node index inside its [`crate::WorkflowSpec`].
        node: usize,
    },
}

impl TraceEventKind {
    /// Short display name (the Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Enqueue { .. } => "enqueue",
            TraceEventKind::Steal { .. } => "steal",
            TraceEventKind::BatchForm { .. } => "batch-form",
            TraceEventKind::PlannerConsult => "plan",
            TraceEventKind::ReservationHold => "reserve",
            TraceEventKind::Numerics { .. } => "numerics",
            TraceEventKind::CacheStore => "cache-store",
            TraceEventKind::CacheHit { .. } => "cache-hit",
            TraceEventKind::TicketFulfill { .. } => "fulfill",
            TraceEventKind::QueueWait => "queue-wait",
            TraceEventKind::Cancelled => "cancelled",
            TraceEventKind::DeadlineDrop => "deadline-drop",
            TraceEventKind::FusedExec { .. } => "fused-exec",
            TraceEventKind::DagWait { .. } => "dag-wait",
            TraceEventKind::DagOrphan { .. } => "dag-orphan",
        }
    }

    /// True for kinds that mark a point in time rather than a span.
    pub fn is_instant(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Enqueue { .. }
                | TraceEventKind::Steal { .. }
                | TraceEventKind::BatchForm { .. }
                | TraceEventKind::CacheStore
                | TraceEventKind::CacheHit { .. }
                | TraceEventKind::Cancelled
                | TraceEventKind::DeadlineDrop
                | TraceEventKind::DagOrphan { .. }
        )
    }
}

/// One timestamped lifecycle event of one traced job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Ring-assigned publication sequence number (gapless per ring,
    /// ties broken by publication order under the ring lock).
    pub seq: u64,
    /// The job's trace.
    pub trace: TraceId,
    /// The job's content fingerprint.
    pub fingerprint: Fingerprint,
    /// The job's workload class.
    pub class: WorkloadClass,
    /// Worker index that emitted the event (`None` for admission-path
    /// events emitted by the submitting thread).
    pub worker: Option<usize>,
    /// Start of the span (or the instant), nanoseconds since the
    /// engine's telemetry epoch.
    pub start_ns: u64,
    /// Span length in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Which transition this is.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// End of the span (== `start_ns` for instants).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

struct RingState {
    events: VecDeque<TraceEvent>,
}

/// The bounded MPSC-ish event ring every worker publishes into and
/// every collector drains from. Mirrors [`crate::progress::ProgressBus`]:
/// subscriber-gated publish, drop-oldest eviction with a counter, ring
/// cleared when the last collector detaches.
pub(crate) struct TraceRing {
    state: Mutex<RingState>,
    capacity: usize,
    /// Attached collectors; publish is a no-op at zero. Relaxed load on
    /// the fast path, re-checked under the lock (same reasoning as the
    /// progress bus: the gate is an optimization, the lock decides).
    subscribers: AtomicUsize,
    /// Events evicted unread because the ring was full.
    dropped: AtomicU64,
    /// Events accepted into the ring over the engine's lifetime.
    recorded: AtomicU64,
    next_seq: AtomicU64,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> Self {
        TraceRing {
            state: Mutex::new(RingState {
                events: VecDeque::new(),
            }),
            capacity: capacity.max(1),
            subscribers: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// The one-relaxed-load gate unwatched engines pay.
    #[inline]
    pub(crate) fn has_subscribers(&self) -> bool {
        self.subscribers.load(Ordering::Relaxed) > 0
    }

    /// Publishes `event` if any collector is attached; assigns its
    /// sequence number under the lock so ring order and `seq` order
    /// agree. Never blocks on a full ring: the oldest event is evicted
    /// and counted.
    pub(crate) fn publish(&self, mut event: TraceEvent) {
        if !self.has_subscribers() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        // Re-check under the lock: the last collector may have detached
        // (and cleared the ring) between the gate and here.
        if self.subscribers.load(Ordering::Acquire) == 0 {
            return;
        }
        event.seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if st.events.len() >= self.capacity {
            st.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Release);
        }
        st.events.push_back(event);
        self.recorded.fetch_add(1, Ordering::Release);
    }

    /// Publishes a run of events under ONE lock acquisition. The hot
    /// paths emit several span events per job; batching them keeps the
    /// traced engine's lock traffic per job constant instead of per
    /// event, and the slice shape (events are `Copy`) lets the cached
    /// submit path publish its two-event chain from the stack with no
    /// allocation. Sequence numbers are assigned in slice order, so a
    /// lane's chain order survives exactly as with per-event publishes.
    pub(crate) fn publish_slice(&self, events: &[TraceEvent]) {
        if events.is_empty() || !self.has_subscribers() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if self.subscribers.load(Ordering::Acquire) == 0 {
            return;
        }
        // One atomic reserves the whole slice's sequence range (we hold
        // the ring lock, so the range lands in ring order too).
        let base = self
            .next_seq
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        for (i, &(mut event)) in events.iter().enumerate() {
            event.seq = base + i as u64;
            if st.events.len() >= self.capacity {
                st.events.pop_front();
                self.dropped.fetch_add(1, Ordering::Release);
            }
            st.events.push_back(event);
        }
        self.recorded
            .fetch_add(events.len() as u64, Ordering::Release);
    }

    pub(crate) fn drain(&self) -> Vec<TraceEvent> {
        self.state.lock().unwrap().events.drain(..).collect()
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Acquire)
    }

    pub(crate) fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Acquire)
    }

    fn subscribe(&self) {
        if self.subscribers.fetch_add(1, Ordering::AcqRel) == 0 {
            // First collector: pre-fault the ring's full backing store,
            // so steady-state publishes never pay a realloc copy or a
            // scattered fresh-page fault mid-serve. Resize-then-clear
            // touches every slot once, sequentially (which the fault
            // handler streams far better than one 4 KiB fault at a time
            // from the hot path), and keeps the capacity.
            let filler = TraceEvent {
                seq: 0,
                trace: TraceId(0),
                fingerprint: Fingerprint(0),
                class: WorkloadClass {
                    kind: crate::job::JobKind::MdSegment,
                    atoms: 0,
                    iterations: 0,
                },
                worker: None,
                start_ns: 0,
                dur_ns: 0,
                kind: TraceEventKind::CacheStore,
            };
            let mut st = self.state.lock().unwrap();
            if st.events.capacity() < self.capacity {
                st.events.resize(self.capacity, filler);
                st.events.clear();
            }
        }
    }

    fn unsubscribe(&self) {
        if self.subscribers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last collector gone: nobody can ever read the buffered
            // events, so free them rather than letting them rot (same
            // policy as the progress ring). Undelivered events count
            // as dropped, keeping the counter honest.
            let mut st = self.state.lock().unwrap();
            if self.subscribers.load(Ordering::Acquire) == 0 {
                let n = st.events.len() as u64;
                if n > 0 {
                    self.dropped.fetch_add(n, Ordering::Release);
                    st.events.clear();
                    st.events.shrink_to_fit();
                }
            }
        }
    }
}

/// A subscription to the engine's span-event ring
/// ([`crate::DftService::trace`]).
///
/// While at least one collector is alive, workers publish span events;
/// when the last one drops, publishing reverts to the one-relaxed-load
/// no-op and the buffered events are discarded (counted as dropped).
/// Collectors share the one ring destructively: an event drains to
/// exactly one of them.
pub struct TraceCollector {
    ring: Arc<crate::telemetry::Telemetry>,
}

impl TraceCollector {
    pub(crate) fn new(telemetry: Arc<crate::telemetry::Telemetry>) -> Self {
        telemetry.ring().subscribe();
        TraceCollector { ring: telemetry }
    }

    /// Takes every buffered event, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.ring.ring().drain()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.ring().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted unread over the engine's lifetime.
    pub fn dropped(&self) -> u64 {
        self.ring.ring().dropped()
    }

    /// Events accepted into the ring over the engine's lifetime.
    pub fn recorded(&self) -> u64 {
        self.ring.ring().recorded()
    }
}

impl Clone for TraceCollector {
    fn clone(&self) -> Self {
        self.ring.ring().subscribe();
        TraceCollector {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl Drop for TraceCollector {
    fn drop(&mut self) {
        self.ring.ring().unsubscribe();
    }
}

/// Renders events in the Chrome trace-event JSON format (the "JSON
/// array" flavour): spans become `"ph": "X"` complete events, instants
/// become `"ph": "i"`, timestamps are microseconds, and each job's
/// trace id is its `tid` so the viewer draws one lane per job. Load
/// the output in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 2);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        render_event(&mut out, e, 1);
    }
    out.push_str("\n]\n");
    out
}

/// [`chrome_trace_json`] for a federation: each replica's events render
/// under their own `pid` (the replica index), with a `process_name`
/// metadata record naming the lane `replica-N` — so the viewer draws
/// one process group per replica and each job's trace id is still its
/// `tid` within the group. Feed it the drains of
/// [`crate::FederatedService::trace`].
pub fn federated_chrome_trace_json(replicas: &[(usize, Vec<TraceEvent>)]) -> String {
    let total: usize = replicas.iter().map(|(_, evs)| evs.len()).sum();
    let mut out = String::with_capacity(total * 160 + replicas.len() * 120 + 2);
    out.push_str("[\n");
    let mut first = true;
    for (replica, events) in replicas {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {replica}, \"tid\": 0, \
             \"args\": {{\"name\": \"replica-{replica}\"}}}}"
        ));
        for e in events {
            out.push_str(",\n");
            render_event(&mut out, e, *replica);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders one event as a Chrome trace-event JSON object under `pid`.
fn render_event(out: &mut String, e: &TraceEvent, pid: usize) {
    let ts_us = e.start_ns as f64 / 1000.0;
    {
        let mut args = format!(
            "\"class\": \"{}\", \"fingerprint\": \"{}\", \"seq\": {}",
            e.class, e.fingerprint, e.seq
        );
        if let Some(w) = e.worker {
            args.push_str(&format!(", \"worker\": {w}"));
        }
        match e.kind {
            TraceEventKind::Enqueue { shard } => args.push_str(&format!(", \"shard\": {shard}")),
            TraceEventKind::Steal { from_shard } => {
                args.push_str(&format!(", \"from_shard\": {from_shard}"));
            }
            TraceEventKind::BatchForm { size, origin } => args.push_str(&format!(
                ", \"size\": {size}, \"origin\": \"{}\"",
                match origin {
                    BatchOrigin::Home => "home",
                    BatchOrigin::Stolen => "stolen",
                }
            )),
            TraceEventKind::Numerics { target } => {
                args.push_str(&format!(", \"target\": \"{target}\""));
            }
            TraceEventKind::CacheHit { tier } => {
                args.push_str(&format!(", \"tier\": \"{}\"", tier.label()));
            }
            TraceEventKind::TicketFulfill { ok, cached } => {
                args.push_str(&format!(", \"ok\": {ok}, \"cached\": {cached}"));
            }
            TraceEventKind::DagWait { workflow, node }
            | TraceEventKind::DagOrphan { workflow, node } => {
                args.push_str(&format!(", \"workflow\": {workflow}, \"node\": {node}"));
            }
            TraceEventKind::FusedExec { members } => {
                args.push_str(&format!(", \"members\": {members}"));
            }
            TraceEventKind::PlannerConsult
            | TraceEventKind::ReservationHold
            | TraceEventKind::CacheStore
            | TraceEventKind::QueueWait
            | TraceEventKind::Cancelled
            | TraceEventKind::DeadlineDrop => {}
        }
        if e.kind.is_instant() {
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {ts_us:.3}, \"pid\": {pid}, \"tid\": {}, \"args\": {{{args}}}}}",
                e.kind.name(),
                e.class,
                e.trace.0,
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {ts_us:.3}, \
                 \"dur\": {:.3}, \"pid\": {pid}, \"tid\": {}, \"args\": {{{args}}}}}",
                e.kind.name(),
                e.class,
                e.dur_ns as f64 / 1000.0,
                e.trace.0,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::telemetry::Telemetry;

    fn event(trace: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            seq: 0,
            trace: TraceId(trace),
            fingerprint: Fingerprint(0xabcd),
            class: WorkloadClass {
                kind: JobKind::MdSegment,
                atoms: 64,
                iterations: 10,
            },
            worker: Some(1),
            start_ns: 1_000,
            dur_ns: 500,
            kind,
        }
    }

    #[test]
    fn unwatched_ring_drops_everything_for_one_load() {
        let t = Telemetry::new(8);
        assert!(!t.traced());
        t.publish(event(1, TraceEventKind::PlannerConsult));
        assert_eq!(t.ring().recorded(), 0, "no subscriber ⇒ no buffering");
    }

    #[test]
    fn collector_receives_in_order_with_seq() {
        let t = Arc::new(Telemetry::new(8));
        let c = TraceCollector::new(Arc::clone(&t));
        assert!(t.traced());
        t.publish(event(1, TraceEventKind::PlannerConsult));
        t.publish(event(2, TraceEventKind::CacheStore));
        let got = c.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].seq, 0);
        assert_eq!(got[1].seq, 1);
        assert_eq!(got[0].trace, TraceId(1));
        assert!(c.is_empty());
    }

    #[test]
    fn full_ring_evicts_oldest_and_counts() {
        let t = Arc::new(Telemetry::new(2));
        let c = TraceCollector::new(Arc::clone(&t));
        for i in 0..5 {
            t.publish(event(i, TraceEventKind::CacheStore));
        }
        assert_eq!(c.dropped(), 3);
        assert_eq!(c.recorded(), 5);
        let got = c.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].trace, TraceId(3), "oldest evicted first");
    }

    #[test]
    fn last_collector_detaching_clears_and_regates() {
        let t = Arc::new(Telemetry::new(8));
        let c = TraceCollector::new(Arc::clone(&t));
        let c2 = c.clone();
        t.publish(event(1, TraceEventKind::CacheStore));
        drop(c);
        assert!(t.traced(), "second collector keeps the gate open");
        drop(c2);
        assert!(!t.traced());
        assert_eq!(t.ring().len(), 0, "buffer freed with the last collector");
        assert_eq!(t.trace_events_dropped(), 1, "undelivered counts dropped");
        t.publish(event(2, TraceEventKind::CacheStore));
        assert_eq!(t.ring().recorded(), 1, "publishing gated again");
    }

    #[test]
    fn chrome_export_renders_spans_and_instants() {
        let events = vec![
            event(7, TraceEventKind::QueueWait),
            TraceEvent {
                dur_ns: 0,
                kind: TraceEventKind::CacheHit {
                    tier: HitTier::Memory,
                },
                ..event(7, TraceEventKind::CacheStore)
            },
            event(
                7,
                TraceEventKind::TicketFulfill {
                    ok: true,
                    cached: false,
                },
            ),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"tid\": 7"));
        assert!(json.contains("\"tier\": \"memory\""));
        assert!(json.contains("\"ok\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
