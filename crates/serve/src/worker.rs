//! The worker pool: work-stealing dispatch, placement, and execution.
//!
//! Each worker owns a *home* shard of the [`crate::ShardedQueue`]
//! (`worker % shards`) and drains it in batch-sized chunks. When the
//! home shard is empty it turns thief: it steals the largest batchable
//! run from the most-loaded victim shard, so even stolen work usually
//! shares one workload class. Dequeued chunks are grouped into
//! per-class batches, the planner is consulted **once per batch**, then
//! every member job runs: the real numerics through the `ndft_dft`
//! drivers, and the modeled CPU/NDP timing through
//! `ndft_core::run_ndft_with`. Completed outcomes land in the shared
//! content-addressed cache — stored with the plan's **modeled compute
//! cost** ([`crate::PlacementDecision::modeled_cost_s`]), which is
//! what the cost-weighted eviction policy weighs, and written through
//! to the persistent tier when one is configured — and fulfill the
//! submitters' tickets.
//!
//! The planner consultation is **utilization-aware** (unless
//! [`crate::ServeConfig::load_aware`] is off): before planning, the
//! worker snapshots the shared [`crate::ClusterView`] — the modeled
//! busy time concurrent batches have reserved per target — and plans
//! under that bias, so simultaneous batches spread across CPU and NDP
//! instead of piling onto the stacks an isolated plan would pick. The
//! batch's own modeled footprint is then reserved through an RAII
//! [`Reservation`] held for the life of the batch; `Drop` releases it
//! on every exit path (panics included), so the view never drifts.
//!
//! Idle workers park with per-shard exponential backoff between
//! home/steal rounds; the queue's generation token closes the race
//! between scanning the shards and going to sleep.

use crate::batch::{form_batches_from, Batch, BatchOrigin};
use crate::cache::HitTier;
use crate::cluster::Reservation;
use crate::fingerprint::Fingerprint;
use crate::job::{DftJob, JobError, JobPayload, Priority, WorkloadClass};
use crate::metrics::ExecutionSample;
use crate::placement::{
    plan_placement, plan_placement_fused, plan_placement_fused_loaded, plan_placement_loaded,
    PlacementDecision,
};
use crate::progress::JobStage;
use crate::service::EngineShared;
use crate::telemetry::{PlacementTarget, Stage};
use crate::tenant::TenantSlot;
use crate::ticket::JobTicket;
use crate::trace::{TraceEvent, TraceEventKind, TraceId};
use ndft_core::{run_ndft_with, NdftOptions, RunReport};
use ndft_dft::{
    band_structure, bond_list, build_task_graph_fused, run_casida, run_lr_tddft, run_md,
    run_md_prepared, run_scf, run_scf_in, run_scf_selfconsistent_seeded, si_path, GroundState,
    KsHamiltonian, SiliconSystem,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A completed job: the physics payload plus the co-design context it
/// was produced under.
///
/// `PartialEq` compares every field exactly (floats by value), which
/// is what lets the persistence tests state their bit-exact round-trip
/// claim as plain equality.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job as submitted.
    pub job: DftJob,
    /// Content fingerprint (cache key).
    pub fingerprint: Fingerprint,
    /// The physics result.
    pub payload: JobPayload,
    /// The placement the batch's planner consultation chose.
    pub placement: PlacementDecision,
    /// Modeled NDFT engine run of the job's task graph (stage breakdown
    /// on the paper's Table III machine).
    pub modeled: RunReport,
    /// Wall-clock the numeric kernels took on this host.
    pub wall_numeric: Duration,
}

/// One queued job travelling to the workers.
pub(crate) struct PendingJob {
    pub(crate) job: DftJob,
    pub(crate) fingerprint: Fingerprint,
    /// Resolved once at admission so workers and the Drop guard never
    /// recompute it.
    pub(crate) class: WorkloadClass,
    /// The trace lane every span event of this job lands on.
    pub(crate) trace: TraceId,
    /// QoS class declared at submission; selects the shard lane and the
    /// per-priority latency histogram bank.
    pub(crate) priority: Priority,
    /// Optional queued-life budget: a worker reaching this entry after
    /// `enqueued + deadline` drops it instead of executing.
    pub(crate) deadline: Option<Duration>,
    /// The tenant's claimed in-flight quota slot (None when quotas are
    /// disabled); held purely for its RAII release on every exit path.
    pub(crate) _tenant_slot: Option<TenantSlot>,
    pub(crate) ticket: JobTicket,
    pub(crate) enqueued: Instant,
    /// A workflow parent's completed outcome, injected at DAG release
    /// as a warm input. Only consulted when the job kind supports
    /// result-preserving seeding ([`DftJob::accepts_warm_seed`]);
    /// never part of the fingerprint, so caching stays content-pure.
    pub(crate) warm: Option<Arc<JobOutcome>>,
    /// Progress ring handle, so even the last-resort Drop fulfillment
    /// below closes the job's streamed lifecycle with a `Done`.
    pub(crate) progress: Arc<crate::progress::ProgressBus>,
    /// Metrics handle, so the guard's failure also lands in the
    /// counters (else `tickets_outstanding` would read > 0 forever).
    pub(crate) metrics: Arc<crate::metrics::Metrics>,
    /// Telemetry handle, so every exit path — the Drop guard included —
    /// records an end-to-end latency and closes the trace span chain.
    pub(crate) telemetry: Arc<crate::telemetry::Telemetry>,
}

impl PendingJob {
    /// The one failure protocol, shared by every losing exit path (a
    /// solver error, a panic, the shutdown sweep, the Drop guard):
    /// count the failure, record the end-to-end latency (keeping the
    /// histogram totals paired with `completed + failed`), stream the
    /// closing `Done`, close the trace chain with a failed fulfill
    /// event, and resolve the ticket — in that order, so by the time a
    /// waiter observes the error the whole story is already told.
    pub(crate) fn fail(&self, err: JobError) {
        self.metrics.on_fail();
        self.telemetry
            .record_end_to_end(self.class, self.priority, self.enqueued.elapsed());
        self.progress.publish(
            self.fingerprint,
            JobStage::Done {
                ok: false,
                cached: false,
            },
        );
        self.close_trace_chain(&[]);
        self.ticket.fulfill(Err(err));
    }

    /// Consumes a cancelled tombstone: the ticket was already resolved
    /// with [`JobError::Cancelled`] by [`JobTicket::cancel`], so this
    /// exit only settles the books — count the cancellation, record the
    /// end-to-end latency (keeping the histogram paired with the four
    /// terminal counters), stream the terminal `Cancelled` stage, and
    /// close the trace chain. Called by whoever dequeues the entry: a
    /// worker's batch loop or the shutdown sweep.
    pub(crate) fn consume_cancelled(&self) {
        self.metrics.on_cancel();
        self.telemetry
            .record_end_to_end(self.class, self.priority, self.enqueued.elapsed());
        self.progress.publish(self.fingerprint, JobStage::Cancelled);
        self.close_trace_chain(&[TraceEventKind::Cancelled]);
    }

    /// Whether this entry's queued-life budget has run out.
    pub(crate) fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| self.enqueued.elapsed() > d)
    }

    /// Drops a queued job whose deadline expired before a worker
    /// reached it: count the drop, record the end-to-end latency,
    /// stream a failed `Done`, close the trace chain with a
    /// deadline-drop marker, and resolve the ticket with
    /// [`JobError::DeadlineExceeded`] — fulfill last, as everywhere.
    pub(crate) fn drop_deadline(&self) {
        self.metrics.on_deadline_drop();
        self.telemetry
            .record_end_to_end(self.class, self.priority, self.enqueued.elapsed());
        self.progress.publish(
            self.fingerprint,
            JobStage::Done {
                ok: false,
                cached: false,
            },
        );
        self.close_trace_chain(&[TraceEventKind::DeadlineDrop]);
        self.ticket.fulfill(Err(JobError::DeadlineExceeded));
    }

    /// Publishes `markers` (instant events) followed by the failed
    /// fulfill event that ends every trace chain — one ring acquisition
    /// for the lot, nothing when untraced.
    fn close_trace_chain(&self, markers: &[TraceEventKind]) {
        if !self.telemetry.traced() {
            return;
        }
        let now_ns = self.telemetry.now_ns();
        let event = |kind: TraceEventKind| TraceEvent {
            seq: 0,
            trace: self.trace,
            fingerprint: self.fingerprint,
            class: self.class,
            worker: None,
            start_ns: now_ns,
            dur_ns: 0,
            kind,
        };
        let events: Vec<TraceEvent> = markers
            .iter()
            .cloned()
            .chain(std::iter::once(TraceEventKind::TicketFulfill {
                ok: false,
                cached: false,
            }))
            .map(event)
            .collect();
        self.telemetry.publish_slice(&events);
    }
}

impl Drop for PendingJob {
    fn drop(&mut self) {
        // Last-resort guarantee that no waiter hangs: if this entry is
        // dropped on any path that never resolved it (a panic unwinding
        // through a worker, a dropped batch), run the failure protocol
        // above, so neither the counters, the latency histograms, nor a
        // watched lifecycle are left dangling (a guard firing here means
        // the job WAS admitted and counted submitted; the rejected-push
        // path resolves its ticket before dropping). A no-op for the
        // normal paths: the entry is only dropped unresolved by the
        // owning thread, so the is_done check cannot race another
        // fulfiller.
        if !self.ticket.is_done() {
            self.fail(JobError::ShutDown);
        }
    }
}

/// Runs the job's actual numerics, timing the kernel work.
///
/// # Errors
///
/// [`JobError::InvalidSystem`] for bad atom counts or out-of-bounds
/// parameters, [`JobError::Numerics`] when a solver fails.
pub fn execute_payload(job: &DftJob) -> Result<(JobPayload, Duration), JobError> {
    execute_payload_seeded(job, None)
}

/// [`execute_payload`] with an optional warm input from a workflow
/// parent. The seed is consulted only when
/// [`DftJob::accepts_warm_seed`] approves the pairing (exactly-matching
/// SCF options), so passing an unrelated outcome is harmless — the job
/// just runs cold. Seeded and cold executions of the same job are
/// bit-identical by construction.
///
/// # Errors
///
/// As [`execute_payload`].
pub fn execute_payload_seeded(
    job: &DftJob,
    warm: Option<&JobOutcome>,
) -> Result<(JobPayload, Duration), JobError> {
    job.validate()?;
    let system = job.system().expect("validated above");
    let start = Instant::now();
    let payload = match job {
        DftJob::GroundState { .. } => {
            let opts = job.scf_options().expect("ground-state job");
            let gs = run_scf(&system, &opts).map_err(|e| JobError::Numerics(format!("{e:?}")))?;
            JobPayload::GroundState(gs)
        }
        DftJob::MdSegment { .. } => {
            let opts = job.md_options().expect("md job");
            JobPayload::Md(run_md(&system, &opts))
        }
        DftJob::Spectrum {
            full_casida: false, ..
        } => JobPayload::Tda(
            run_lr_tddft(&system).map_err(|e| JobError::Numerics(format!("{e:?}")))?,
        ),
        DftJob::Spectrum {
            full_casida: true, ..
        } => JobPayload::Casida(
            run_casida(&system).map_err(|e| JobError::Numerics(format!("{e:?}")))?,
        ),
        DftJob::BandStructure {
            segments,
            n_bands,
            scissor_ev,
            ..
        } => {
            let path = si_path(*segments);
            JobPayload::Bands(band_structure(&path, *n_bands, *scissor_ev))
        }
        DftJob::ScfSelfConsistent {
            occupied,
            cycles,
            alpha,
            ..
        } => {
            let opts = job.scf_options().expect("self-consistent job");
            let initial = warm_seed_for(job, warm).cloned();
            let sc =
                run_scf_selfconsistent_seeded(&system, &opts, *occupied, *cycles, *alpha, initial)
                    .map_err(|e| JobError::Numerics(format!("{e:?}")))?;
            JobPayload::SelfConsistent(sc)
        }
    };
    Ok((payload, start.elapsed()))
}

/// The ground state a warm outcome contributes to `job`, if the pairing
/// is result-preserving.
pub(crate) fn warm_seed_for<'a>(
    job: &DftJob,
    warm: Option<&'a JobOutcome>,
) -> Option<&'a GroundState> {
    let outcome = warm?;
    if !job.accepts_warm_seed(&outcome.job) {
        return None;
    }
    match &outcome.payload {
        JobPayload::GroundState(gs) => Some(gs),
        _ => None,
    }
}

/// Executes one job under an already-made placement decision, producing
/// the full outcome record (used by workers and by single-shot callers
/// that bypass the service).
///
/// # Errors
///
/// Propagates [`execute_payload`] failures.
pub fn execute_job(
    job: &DftJob,
    placement: &PlacementDecision,
    modeled: &RunReport,
) -> Result<JobOutcome, JobError> {
    execute_job_seeded(job, placement, modeled, None)
}

/// [`execute_job`] with an optional warm input (see
/// [`execute_payload_seeded`]).
///
/// # Errors
///
/// Propagates [`execute_payload`] failures.
pub fn execute_job_seeded(
    job: &DftJob,
    placement: &PlacementDecision,
    modeled: &RunReport,
    warm: Option<&JobOutcome>,
) -> Result<JobOutcome, JobError> {
    let (payload, wall_numeric) = execute_payload_seeded(job, warm)?;
    Ok(JobOutcome {
        job: job.clone(),
        fingerprint: job.fingerprint(),
        payload,
        placement: placement.clone(),
        modeled: modeled.clone(),
        wall_numeric,
    })
}

/// The heavy setup one fused batch member builds and every later member
/// reuses. Sharing covers only operand *construction* — each member's
/// kernels still run their own arithmetic start to finish — which is
/// what keeps fused payloads bit-identical to solo execution.
enum FusedOperand {
    /// One Kohn–Sham Hamiltonian serving every ground-state member. Its
    /// construction (dominated by the pseudopotential projector tables)
    /// depends only on the geometry and the potential shape — pinned
    /// here by bit pattern, so a member with a different shape falls
    /// back to its own solo setup instead of a wrong shared one.
    ScfHamiltonian {
        // Boxed: the Hamiltonian is ~300 bytes of tables and would
        // otherwise dominate every variant of this enum.
        h: Box<KsHamiltonian>,
        depth_bits: u64,
        sigma_bits: u64,
    },
    /// One O(n²) neighbour scan serving every MD member.
    MdBonds(Vec<(usize, usize)>),
    /// Kinds with nothing shareable beyond the system: band paths and
    /// spectra rebuild everything per run anyway, and self-consistent
    /// SCF *mutates* its Hamiltonian, so sharing one would change
    /// results.
    None,
}

/// Per-batch shared state of the fused cross-job execution path: the
/// batch's system built once, plus the kind-specific shared operand
/// (one Kohn–Sham Hamiltonian for ground states, one bond list for MD).
/// Built lazily by the worker at the first member that actually
/// executes (a batch fully served from cache pays nothing).
pub struct FusedContext {
    system: SiliconSystem,
    operand: FusedOperand,
}

impl FusedContext {
    /// Builds the shared system and operand for a batch of `job`'s
    /// workload class.
    ///
    /// # Errors
    ///
    /// [`JobError::InvalidSystem`] when the job's system is invalid.
    pub fn build(job: &DftJob) -> Result<FusedContext, JobError> {
        job.validate()?;
        let system = job.system().expect("validated above");
        let operand = match job {
            DftJob::GroundState { .. } => {
                let opts = job.scf_options().expect("ground-state job");
                FusedOperand::ScfHamiltonian {
                    h: Box::new(KsHamiltonian::new(&system, &opts)),
                    depth_bits: opts.potential_depth_ev.to_bits(),
                    sigma_bits: opts.potential_sigma.to_bits(),
                }
            }
            DftJob::MdSegment { .. } => FusedOperand::MdBonds(bond_list(&system)),
            _ => FusedOperand::None,
        };
        Ok(FusedContext { system, operand })
    }
}

/// [`execute_payload_seeded`] through a batch's [`FusedContext`]: the
/// shared system and operand replace the per-job setup, and the
/// member's own kernels run unchanged — the payload is bit-identical
/// to a solo execution of the same job. A member whose options don't
/// match the shared operand (impossible within one workload class, but
/// cheap to defend) runs its solo setup instead.
///
/// # Errors
///
/// As [`execute_payload`].
pub fn execute_payload_fused(
    job: &DftJob,
    warm: Option<&JobOutcome>,
    ctx: &FusedContext,
) -> Result<(JobPayload, Duration), JobError> {
    job.validate()?;
    let system = &ctx.system;
    let start = Instant::now();
    let payload = match job {
        DftJob::GroundState { .. } => {
            let opts = job.scf_options().expect("ground-state job");
            let gs = match &ctx.operand {
                FusedOperand::ScfHamiltonian {
                    h,
                    depth_bits,
                    sigma_bits,
                } if opts.potential_depth_ev.to_bits() == *depth_bits
                    && opts.potential_sigma.to_bits() == *sigma_bits =>
                {
                    run_scf_in(system, &opts, h)
                }
                _ => run_scf(system, &opts),
            }
            .map_err(|e| JobError::Numerics(format!("{e:?}")))?;
            JobPayload::GroundState(gs)
        }
        DftJob::MdSegment { .. } => {
            let opts = job.md_options().expect("md job");
            let traj = match &ctx.operand {
                FusedOperand::MdBonds(bonds) => run_md_prepared(system, &opts, bonds),
                _ => run_md(system, &opts),
            };
            JobPayload::Md(traj)
        }
        DftJob::Spectrum {
            full_casida: false, ..
        } => {
            JobPayload::Tda(run_lr_tddft(system).map_err(|e| JobError::Numerics(format!("{e:?}")))?)
        }
        DftJob::Spectrum {
            full_casida: true, ..
        } => JobPayload::Casida(
            run_casida(system).map_err(|e| JobError::Numerics(format!("{e:?}")))?,
        ),
        DftJob::BandStructure {
            segments,
            n_bands,
            scissor_ev,
            ..
        } => {
            let path = si_path(*segments);
            JobPayload::Bands(band_structure(&path, *n_bands, *scissor_ev))
        }
        DftJob::ScfSelfConsistent {
            occupied,
            cycles,
            alpha,
            ..
        } => {
            let opts = job.scf_options().expect("self-consistent job");
            let initial = warm_seed_for(job, warm).cloned();
            let sc =
                run_scf_selfconsistent_seeded(system, &opts, *occupied, *cycles, *alpha, initial)
                    .map_err(|e| JobError::Numerics(format!("{e:?}")))?;
            JobPayload::SelfConsistent(sc)
        }
    };
    Ok((payload, start.elapsed()))
}

/// [`execute_job_seeded`] through a batch's [`FusedContext`] (see
/// [`execute_payload_fused`]).
///
/// # Errors
///
/// Propagates [`execute_payload`] failures.
pub fn execute_job_fused(
    job: &DftJob,
    placement: &PlacementDecision,
    modeled: &RunReport,
    warm: Option<&JobOutcome>,
    ctx: &FusedContext,
) -> Result<JobOutcome, JobError> {
    let (payload, wall_numeric) = execute_payload_fused(job, warm, ctx)?;
    Ok(JobOutcome {
        job: job.clone(),
        fingerprint: job.fingerprint(),
        payload,
        placement: placement.clone(),
        modeled: modeled.clone(),
        wall_numeric,
    })
}

impl JobOutcome {
    /// The metrics contribution of this outcome.
    pub(crate) fn sample(&self) -> ExecutionSample {
        ExecutionSample {
            wall_numeric_s: self.wall_numeric.as_secs_f64(),
            modeled_cpu_busy_s: self.placement.cpu_busy,
            modeled_ndp_busy_s: self.placement.ndp_busy,
            modeled_total_s: self.placement.modeled_time(),
            modeled_cpu_pinned_s: self.placement.cpu_pinned_time,
        }
    }
}

/// Floor of the idle-park window; reset on every successful dequeue.
const BACKOFF_MIN: Duration = Duration::from_micros(50);
/// Ceiling of the idle-park window (also bounds shutdown latency for a
/// worker that missed the close notification).
const BACKOFF_MAX: Duration = Duration::from_millis(5);

/// Worker main loop: drain home shard → steal → batch → plan once →
/// execute members, parking with exponential backoff when idle.
pub(crate) fn worker_loop(shared: &EngineShared, worker: usize) {
    let home = worker % shared.queue.shards();
    let mut backoff = BACKOFF_MIN;
    loop {
        // Read the generation *before* scanning so a push that races the
        // scan turns the park below into a no-op.
        let generation = shared.queue.generation();
        if let Some(drained) = shared.queue.try_pop_home(home, shared.config.max_batch) {
            backoff = BACKOFF_MIN;
            shared
                .metrics
                .on_dispatch(worker, home, drained.len() as u64, false);
            dispatch_chunk(shared, BatchOrigin::Home, home, drained, worker);
            continue;
        }
        if let Some(run) = shared.queue.try_steal(home, shared.config.max_batch) {
            backoff = BACKOFF_MIN;
            shared
                .metrics
                .on_dispatch(worker, run.from_shard, run.items.len() as u64, true);
            dispatch_chunk(
                shared,
                BatchOrigin::Stolen,
                run.from_shard,
                run.items,
                worker,
            );
            continue;
        }
        if shared.queue.is_closed() {
            if shared.queue.is_empty() {
                return;
            }
            // Closed but a shard still holds items (racing drains):
            // loop again and help finish them.
            continue;
        }
        shared.queue.wait_for_work(generation, backoff);
        backoff = (backoff * 2).min(BACKOFF_MAX);
    }
}

/// Groups one dequeued chunk into per-class batches and processes them.
/// `shard` is the queue shard the chunk was dequeued from (home or
/// victim), recorded on the cluster view's per-shard in-flight counts;
/// `worker` is the dispatching worker's index, stamped on span events.
fn dispatch_chunk(
    shared: &EngineShared,
    origin: BatchOrigin,
    shard: usize,
    chunk: Vec<PendingJob>,
    worker: usize,
) {
    // A stolen run's members each get a steal marker on their trace
    // lane: the one transition that happens at dequeue, before batching.
    if origin == BatchOrigin::Stolen && shared.telemetry.traced() {
        let now_ns = shared.telemetry.now_ns();
        let events: Vec<TraceEvent> = chunk
            .iter()
            .map(|pending| TraceEvent {
                seq: 0,
                trace: pending.trace,
                fingerprint: pending.fingerprint,
                class: pending.class,
                worker: Some(worker),
                start_ns: now_ns,
                dur_ns: 0,
                kind: TraceEventKind::Steal { from_shard: shard },
            })
            .collect();
        shared.telemetry.publish_slice(&events);
    }
    for batch in form_batches_from(origin, chunk, |p: &PendingJob| p.job.workload_class()) {
        process_batch(shared, batch, shard, worker);
    }
}

fn process_batch(shared: &EngineShared, batch: Batch<PendingJob>, shard: usize, worker: usize) {
    let origin = batch.origin;
    let batch_jobs = batch.entries.len();
    let graph = match batch.entries[0].job.task_graph() {
        Ok(g) => g,
        Err(e) => {
            // Submission validates systems, so this is unreachable in
            // practice — but a worker must never panic on a bad job.
            let err = JobError::InvalidSystem(e.to_string());
            for pending in &batch.entries {
                pending.fail(err.clone());
            }
            return;
        }
    };

    // One registry lookup covers the whole batch (every member shares
    // the class); after this, stage records are pure atomics.
    let telemetry = &shared.telemetry;
    let recorder = telemetry.class(batch.class);
    let batch_start = Instant::now();

    // Queue-wait ends for every member the moment its batch starts
    // processing — recorded up front so the stage covers members the
    // cache later serves without executing.
    for pending in &batch.entries {
        recorder.record(
            Stage::QueueWait,
            batch_start.saturating_duration_since(pending.enqueued),
        );
    }
    // One reusable buffer batches each lock point's events into a
    // single ring acquisition — the traced engine's lock traffic stays
    // per job, not per event.
    let mut span_buf: Vec<TraceEvent> = Vec::new();
    if telemetry.traced() {
        let batch_ns = telemetry.ns_at(batch_start);
        for pending in &batch.entries {
            let start_ns = telemetry.ns_at(pending.enqueued);
            span_buf.push(TraceEvent {
                seq: 0,
                trace: pending.trace,
                fingerprint: pending.fingerprint,
                class: pending.class,
                worker: Some(worker),
                start_ns,
                dur_ns: batch_ns.saturating_sub(start_ns),
                kind: TraceEventKind::QueueWait,
            });
            span_buf.push(TraceEvent {
                seq: 0,
                trace: pending.trace,
                fingerprint: pending.fingerprint,
                class: pending.class,
                worker: Some(worker),
                start_ns: batch_ns,
                dur_ns: 0,
                kind: TraceEventKind::BatchForm {
                    size: batch_jobs,
                    origin,
                },
            });
        }
        telemetry.publish_slice(&span_buf);
        span_buf.clear();
    }

    // The planner consultation and modeled engine run are shared by the
    // whole class (every member has the same task-graph shape) and made
    // lazily: a batch fully served by cache/dedup pays for neither —
    // and reserves nothing on the cluster view.
    let mut planned: Option<(PlacementDecision, RunReport)> = None;
    // Held for the rest of the batch; Drop releases it on every exit
    // path (including a panic unwinding through the catch below), so
    // the cluster view always returns to zero when the engine drains.
    let mut reservation: Option<Reservation<'_>> = None;
    // The member whose consult created the plan — the reservation-hold
    // span lands on its trace lane (set iff `reservation` is).
    let mut leader: Option<(TraceId, Fingerprint)> = None;
    let batch_class = batch.class;
    let mut executions = 0u64;
    // Fused cross-job execution engages only for real batches (≥ 2
    // members) with the knob on — a singleton gains nothing from
    // amortization and would pay a second planning pass for it. The
    // context is built lazily at the first member that executes, and
    // the fused/solo modeled-time gap feeds `fused_amortized_s`.
    let fuse = shared.config.fused_execution && batch_jobs >= 2;
    let mut fused_ctx: Option<FusedContext> = None;
    let mut fused_saving_s = 0.0f64;

    // Identical fingerprints inside the batch execute once; later entries
    // share the Arc'd outcome, as do cross-batch repeats via the cache.
    let mut local: HashMap<Fingerprint, Arc<JobOutcome>> = HashMap::new();
    for pending in batch.entries {
        // QoS exits come before any cache or planner work: a cancelled
        // tombstone (ticket already resolved by `JobTicket::cancel`)
        // and a deadline-expired member each settle their books and
        // free the slot without executing.
        if pending.ticket.is_done() {
            pending.consume_cancelled();
            continue;
        }
        if pending.deadline_expired() {
            pending.drop_deadline();
            continue;
        }
        let cached = local
            .get(&pending.fingerprint)
            .map(|hit| (hit.clone(), HitTier::Batch))
            .or_else(|| shared.cache.peek_fetch_tiered(&pending.fingerprint));
        if let Some((hit, tier)) = cached {
            shared
                .metrics
                .on_dedup_complete(pending.enqueued.elapsed().as_secs_f64());
            if telemetry.traced() {
                span_buf.push(TraceEvent {
                    seq: 0,
                    trace: pending.trace,
                    fingerprint: pending.fingerprint,
                    class: pending.class,
                    worker: Some(worker),
                    start_ns: telemetry.now_ns(),
                    dur_ns: 0,
                    kind: TraceEventKind::CacheHit { tier },
                });
            }
            // Done is published before fulfillment on every path, so a
            // waiter that just resolved can already read the lifecycle.
            shared.progress.publish(
                pending.fingerprint,
                JobStage::Done {
                    ok: true,
                    cached: true,
                },
            );
            // End-to-end lands *before* the fulfill on every path: the
            // moment a waiter resolves, the histogram already counts its
            // job, so the report's completed/failed-vs-histogram pairing
            // holds for any caller that waited its tickets out.
            telemetry.record_end_to_end(
                pending.class,
                pending.priority,
                pending.enqueued.elapsed(),
            );
            let fulfill_start = Instant::now();
            pending.ticket.fulfill(Ok(hit));
            recorder.record(Stage::Fulfill, fulfill_start.elapsed());
            if telemetry.traced() {
                span_buf.push(TraceEvent {
                    seq: 0,
                    trace: pending.trace,
                    fingerprint: pending.fingerprint,
                    class: pending.class,
                    worker: Some(worker),
                    start_ns: telemetry.ns_at(fulfill_start),
                    dur_ns: fulfill_start.elapsed().as_nanos() as u64,
                    kind: TraceEventKind::TicketFulfill {
                        ok: true,
                        cached: true,
                    },
                });
                telemetry.publish_slice(&span_buf);
                span_buf.clear();
            }
            continue;
        }
        // A panicking planner or solver must not take the worker thread
        // (and every waiting ticket behind it) down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if planned.is_none() {
                let plan_start = Instant::now();
                // Consult the global utilization view (when load-aware):
                // targets that concurrent batches have reserved look
                // slower, so simultaneous batches spread instead of
                // stacking.
                let snapshot = shared.config.load_aware.then(|| shared.cluster.snapshot());
                let solo = match &snapshot {
                    Some(snap) => plan_placement_loaded(&graph, shared.config.policy, snap),
                    None => plan_placement(&graph, shared.config.policy),
                };
                let (decision, modeled) = if fuse {
                    // Plan the amortized per-member view: the fused task
                    // graph charges shared operand traffic once across
                    // the batch, and the fusion-aware planner spreads
                    // boundary/transfer costs over the members — so
                    // placement can prefer larger NDP batches when the
                    // amortization beats the queue delay the solo plan
                    // saw.
                    let fused_graph =
                        build_task_graph_fused(&graph.system, graph.iterations, batch_jobs);
                    let fused = match &snapshot {
                        Some(snap) => plan_placement_fused_loaded(
                            &fused_graph,
                            shared.config.policy,
                            snap,
                            batch_jobs,
                        ),
                        None => {
                            plan_placement_fused(&fused_graph, shared.config.policy, batch_jobs)
                        }
                    };
                    fused_saving_s = (solo.modeled_time() - fused.modeled_time()).max(0.0);
                    let modeled = run_ndft_with(&fused_graph, NdftOptions::default());
                    (fused, modeled)
                } else {
                    let modeled = run_ndft_with(&graph, NdftOptions::default());
                    (solo, modeled)
                };
                // Metrics, telemetry, and reservation only after every
                // fallible step above: if planning or the modeled run
                // panics, the next member's retry must not find a
                // half-recorded plan (double-counted on_plan, or a
                // snapshot contending with this batch's own abandoned
                // reservation).
                let plan_wall = plan_start.elapsed();
                recorder.record(Stage::Plan, plan_wall);
                if telemetry.traced() {
                    telemetry.publish(TraceEvent {
                        seq: 0,
                        trace: pending.trace,
                        fingerprint: pending.fingerprint,
                        class: pending.class,
                        worker: Some(worker),
                        start_ns: telemetry.ns_at(plan_start),
                        dur_ns: plan_wall.as_nanos() as u64,
                        kind: TraceEventKind::PlannerConsult,
                    });
                }
                shared
                    .metrics
                    .on_plan(decision.cpu_load_s, decision.ndp_load_s, decision.shifted);
                // Reserve the whole batch's modeled footprint (per-job
                // busy × members — pessimistic for members the cache
                // later serves, released wholesale when the batch ends).
                reservation = Some(shared.cluster.reserve(
                    shard,
                    decision.cpu_busy * batch_jobs as f64,
                    decision.ndp_busy * batch_jobs as f64,
                ));
                leader = Some((pending.trace, pending.fingerprint));
                planned = Some((decision, modeled));
            }
            let (placement, modeled) = planned.as_ref().expect("just planned");
            // Stream the lifecycle: the job is now committed to this
            // batch's placement and about to run. Riders publish the
            // same (shared) decision as the member that planned it. The
            // subscriber check guards the *construction* — cloning and
            // boxing a PlacementDecision per executed job is exactly the
            // cost the gate exists to avoid on unwatched engines.
            if shared.progress.has_subscribers() {
                shared.progress.publish(
                    pending.fingerprint,
                    JobStage::Planned {
                        placement: Box::new(placement.clone()),
                    },
                );
            }
            shared
                .progress
                .publish(pending.fingerprint, JobStage::Running);
            let warm = pending.warm.as_deref();
            if warm_seed_for(&pending.job, warm).is_some() {
                shared.metrics.on_warm_inject();
            }
            if fuse && fused_ctx.is_none() {
                fused_ctx = Some(FusedContext::build(&pending.job)?);
            }
            match fused_ctx.as_ref() {
                Some(ctx) => execute_job_fused(&pending.job, placement, modeled, warm, ctx),
                None => execute_job_seeded(&pending.job, placement, modeled, warm),
            }
        }));
        match result {
            Ok(Ok(outcome)) => {
                executions += 1;
                let outcome = Arc::new(outcome);
                let target = PlacementTarget::of(&outcome.placement);
                recorder.record(Stage::Execute, outcome.wall_numeric);
                recorder.record_target(target, outcome.wall_numeric);
                if telemetry.traced() {
                    let wall_ns = outcome.wall_numeric.as_nanos().min(u64::MAX as u128) as u64;
                    span_buf.push(TraceEvent {
                        seq: 0,
                        trace: pending.trace,
                        fingerprint: pending.fingerprint,
                        class: pending.class,
                        worker: Some(worker),
                        start_ns: telemetry.now_ns().saturating_sub(wall_ns),
                        dur_ns: wall_ns,
                        kind: TraceEventKind::Numerics { target },
                    });
                }
                let fulfill_start = Instant::now();
                // Write-through insert carrying the plan's modeled
                // compute cost: the cost-weighted tier retains entries
                // in proportion to what re-creating them would cost,
                // and the disk tier (when configured) appends the
                // encoded outcome before the memory tier can ever
                // evict it.
                shared.cache.store(
                    pending.fingerprint,
                    Arc::clone(&outcome),
                    outcome.placement.modeled_cost_s(outcome.modeled.iterations),
                );
                if telemetry.traced() {
                    span_buf.push(TraceEvent {
                        seq: 0,
                        trace: pending.trace,
                        fingerprint: pending.fingerprint,
                        class: pending.class,
                        worker: Some(worker),
                        start_ns: telemetry.now_ns(),
                        dur_ns: 0,
                        kind: TraceEventKind::CacheStore,
                    });
                }
                local.insert(pending.fingerprint, Arc::clone(&outcome));
                shared
                    .metrics
                    .on_executed(pending.enqueued.elapsed().as_secs_f64(), outcome.sample());
                shared.progress.publish(
                    pending.fingerprint,
                    JobStage::Done {
                        ok: true,
                        cached: false,
                    },
                );
                // As on the dedup path: count end-to-end before the
                // fulfill so resolved waiters are already in the
                // histogram.
                telemetry.record_end_to_end(
                    pending.class,
                    pending.priority,
                    pending.enqueued.elapsed(),
                );
                pending.ticket.fulfill(Ok(outcome));
                let fulfill_wall = fulfill_start.elapsed();
                recorder.record(Stage::Fulfill, fulfill_wall);
                if telemetry.traced() {
                    span_buf.push(TraceEvent {
                        seq: 0,
                        trace: pending.trace,
                        fingerprint: pending.fingerprint,
                        class: pending.class,
                        worker: Some(worker),
                        start_ns: telemetry.ns_at(fulfill_start),
                        dur_ns: fulfill_wall.as_nanos() as u64,
                        kind: TraceEventKind::TicketFulfill {
                            ok: true,
                            cached: false,
                        },
                    });
                    telemetry.publish_slice(&span_buf);
                    span_buf.clear();
                }
            }
            Ok(Err(e)) => {
                pending.fail(e);
            }
            Err(panic) => {
                // The panic path runs the same failure protocol as any
                // other exit: a frontend watching the job sees it fail,
                // not vanish.
                let msg = panic_message(panic.as_ref());
                pending.fail(JobError::Numerics(format!("job panicked: {msg}")));
            }
        }
    }
    // A fused batch that executed anything settles its books once: the
    // member count and the modeled seconds the amortization shaved off
    // (per-member solo-vs-fused gap × executed members), plus one
    // FusedExec span on the leader's lane covering the member loop.
    if fuse && executions > 0 {
        shared
            .metrics
            .on_fused(executions, executions as f64 * fused_saving_s);
        if telemetry.traced() {
            let (leader_trace, leader_fingerprint) =
                leader.expect("an execution implies a planning member");
            telemetry.publish(TraceEvent {
                seq: 0,
                trace: leader_trace,
                fingerprint: leader_fingerprint,
                class: batch_class,
                worker: Some(worker),
                start_ns: telemetry.ns_at(batch_start),
                dur_ns: batch_start.elapsed().as_nanos() as u64,
                kind: TraceEventKind::FusedExec {
                    members: executions as usize,
                },
            });
        }
    }
    // Record the reservation's full hold (grant → release) before
    // letting the RAII guard release it; the span lands on the lane of
    // the member that triggered planning.
    if let Some(held) = reservation.take() {
        let hold = held.held_for();
        recorder.record(Stage::Reserve, hold);
        if telemetry.traced() {
            let (leader_trace, leader_fingerprint) =
                leader.expect("a reservation implies a planning member");
            telemetry.publish(TraceEvent {
                seq: 0,
                trace: leader_trace,
                fingerprint: leader_fingerprint,
                class: batch_class,
                worker: Some(worker),
                start_ns: telemetry.ns_at(held.granted_at()),
                dur_ns: hold.as_nanos() as u64,
                kind: TraceEventKind::ReservationHold,
            });
        }
        drop(held);
    }
    shared
        .metrics
        .on_batch(planned.is_some(), executions.saturating_sub(1), origin);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;

    #[test]
    fn execute_payload_runs_all_kinds() {
        let jobs = [
            DftJob::GroundState {
                atoms: 8,
                bands: 4,
                max_iterations: 4,
            },
            DftJob::MdSegment {
                atoms: 64,
                steps: 5,
                temperature_k: 300.0,
                seed: 1,
            },
            DftJob::Spectrum {
                atoms: 16,
                full_casida: false,
            },
            DftJob::Spectrum {
                atoms: 16,
                full_casida: true,
            },
            DftJob::BandStructure {
                atoms: 8,
                segments: 2,
                n_bands: 6,
                scissor_ev: 0.7,
            },
            DftJob::ScfSelfConsistent {
                atoms: 16,
                bands: 4,
                max_iterations: 3,
                occupied: 4,
                cycles: 2,
                alpha: 0.5,
            },
        ];
        for job in &jobs {
            let (payload, wall) = execute_payload(job).unwrap();
            assert!(payload.headline().is_finite(), "{job}");
            assert!(wall > Duration::ZERO);
        }
    }

    #[test]
    fn warm_seeded_execution_is_bit_identical_to_cold() {
        // The workflow injection contract at the worker level: executing
        // a self-consistent child seeded with its matching ground-state
        // parent produces exactly the payload a cold run produces.
        let parent = DftJob::GroundState {
            atoms: 16,
            bands: 4,
            max_iterations: 3,
        };
        let child = DftJob::ScfSelfConsistent {
            atoms: 16,
            bands: 4,
            max_iterations: 3,
            occupied: 4,
            cycles: 2,
            alpha: 0.5,
        };
        let graph = parent.task_graph().unwrap();
        let placement = plan_placement(&graph, PlacementPolicy::CostAware);
        let modeled = run_ndft_with(&graph, NdftOptions::default());
        let parent_outcome = execute_job(&parent, &placement, &modeled).unwrap();
        assert!(warm_seed_for(&child, Some(&parent_outcome)).is_some());
        let (cold, _) = execute_payload(&child).unwrap();
        let (warm, _) = execute_payload_seeded(&child, Some(&parent_outcome)).unwrap();
        assert_eq!(cold, warm);
        // A non-matching seed is ignored, not misapplied.
        let mismatched = DftJob::ScfSelfConsistent {
            atoms: 16,
            bands: 5,
            max_iterations: 3,
            occupied: 4,
            cycles: 2,
            alpha: 0.5,
        };
        assert!(warm_seed_for(&mismatched, Some(&parent_outcome)).is_none());
    }

    #[test]
    fn fused_execution_is_bit_identical_to_solo() {
        // Ground-state batch: one shared Hamiltonian, varying band
        // counts (the same spread a same-class flood produces).
        let gs_jobs: Vec<DftJob> = (3..6)
            .map(|bands| DftJob::GroundState {
                atoms: 8,
                bands,
                max_iterations: 3,
            })
            .collect();
        let ctx = FusedContext::build(&gs_jobs[0]).unwrap();
        for job in &gs_jobs {
            let (fused, _) = execute_payload_fused(job, None, &ctx).unwrap();
            let (solo, _) = execute_payload(job).unwrap();
            assert_eq!(fused, solo, "{job}");
        }
        // MD batch: one shared bond list, varying seeds.
        let md_jobs: Vec<DftJob> = (0..3)
            .map(|seed| DftJob::MdSegment {
                atoms: 64,
                steps: 4,
                temperature_k: 300.0,
                seed,
            })
            .collect();
        let ctx = FusedContext::build(&md_jobs[0]).unwrap();
        for job in &md_jobs {
            let (fused, _) = execute_payload_fused(job, None, &ctx).unwrap();
            let (solo, _) = execute_payload(job).unwrap();
            assert_eq!(fused, solo, "{job}");
        }
        // Kinds with no shareable operand still run — through the
        // shared system, with identical results.
        for job in [
            DftJob::Spectrum {
                atoms: 16,
                full_casida: false,
            },
            DftJob::ScfSelfConsistent {
                atoms: 16,
                bands: 4,
                max_iterations: 3,
                occupied: 4,
                cycles: 2,
                alpha: 0.5,
            },
        ] {
            let ctx = FusedContext::build(&job).unwrap();
            let (fused, _) = execute_payload_fused(&job, None, &ctx).unwrap();
            let (solo, _) = execute_payload(&job).unwrap();
            assert_eq!(fused, solo, "{job}");
        }
    }

    #[test]
    fn execute_job_carries_placement_context() {
        let job = DftJob::Spectrum {
            atoms: 16,
            full_casida: false,
        };
        let graph = job.task_graph().unwrap();
        let placement = plan_placement(&graph, PlacementPolicy::CostAware);
        let modeled = run_ndft_with(&graph, NdftOptions::default());
        let outcome = execute_job(&job, &placement, &modeled).unwrap();
        assert_eq!(outcome.fingerprint, job.fingerprint());
        assert_eq!(outcome.placement.policy, PlacementPolicy::CostAware);
        assert!(outcome.modeled.total() > 0.0);
        match outcome.payload {
            JobPayload::Tda(ref s) => assert!(s.optical_gap() > 0.0),
            ref other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn dropped_pending_job_fails_its_ticket() {
        // The Drop guard is the last line of defense against hung
        // waiters: an entry lost on any panic path resolves to ShutDown.
        let job = DftJob::MdSegment {
            atoms: 64,
            steps: 1,
            temperature_k: 300.0,
            seed: 0,
        };
        let ticket = crate::ticket::JobTicket::pending(job.fingerprint(), TraceId(1));
        let progress = Arc::new(crate::progress::ProgressBus::new(8));
        let stream = crate::progress::ProgressStream::new(Arc::clone(&progress));
        let metrics = Arc::new(crate::metrics::Metrics::new(1, 1));
        let telemetry = Arc::new(crate::telemetry::Telemetry::new(8));
        let pending = PendingJob {
            fingerprint: job.fingerprint(),
            class: job.workload_class(),
            trace: TraceId(1),
            priority: Priority::Standard,
            deadline: None,
            _tenant_slot: None,
            job,
            ticket: ticket.clone(),
            enqueued: Instant::now(),
            warm: None,
            progress,
            metrics: Arc::clone(&metrics),
            telemetry: Arc::clone(&telemetry),
        };
        drop(pending);
        assert_eq!(ticket.wait().unwrap_err(), JobError::ShutDown);
        // The failure lands in the counters too — the in-flight gauge
        // must return to zero even on the last-resort path — and the
        // guard records the end-to-end latency, keeping the histogram
        // paired with the counters.
        let report = metrics.report(
            crate::cache::CacheStats::default(),
            vec![0],
            0,
            telemetry.class_latency(),
            telemetry.priority_latency(),
            0,
        );
        assert_eq!(report.failed, 1);
        assert_eq!(telemetry.e2e_count(), 1);
        // The lifecycle closes too: the Drop guard streams a failed Done.
        let events = stream.drain();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].stage,
            JobStage::Done {
                ok: false,
                cached: false
            }
        ));
    }

    #[test]
    fn invalid_system_fails_cleanly() {
        let job = DftJob::MdSegment {
            atoms: 10,
            steps: 1,
            temperature_k: 300.0,
            seed: 0,
        };
        match execute_payload(&job) {
            Err(JobError::InvalidSystem(_)) => {}
            other => panic!("expected InvalidSystem, got {other:?}"),
        }
    }
}
