//! Property tests of the sharded submit/drain/steal protocol and the
//! cluster-view reservation lifecycle.
//!
//! The engine's correctness contract is *exactly-once delivery*: every
//! fingerprint pushed into the [`ShardedQueue`] comes out exactly once,
//! whatever interleaving of home drains and steals the dispatcher
//! happens to run. The properties drive the queue through randomized
//! job mixes, shard counts, and dequeue schedules, then check the
//! multiset of fingerprints survives unchanged.
//!
//! The placement layer's analogue is *no reservation leaks*: whatever
//! schedule of batch completions, interleavings, and mid-batch panics
//! the workers see, every [`ClusterView`] reservation is released and
//! the view returns to exactly zero — the property the load-aware
//! planner depends on to never drift.
//!
//! The async client API adds a third contract, the *lost-wakeup
//! invariant* of the ticket state machine: under any interleaving of
//! `poll`, waker registration/replacement, ticket clone, future drop,
//! and `fulfill`, every waker registered at fulfillment time is woken
//! **exactly once**, deregistered or replaced wakers are woken **zero**
//! times, and no future is left pending after fulfillment.
//!
//! The two-tier result cache adds three more: (a) *cost domination* —
//! on any schedule of fresh costed inserts and lookups, cost-weighted
//! eviction holds, at every prefix, at least as much total modeled
//! compute cost as FIFO does on the identical schedule (and both
//! policies' `cost_retained_s` gauge always equals the sum over their
//! residents); (b) the *disk tier round-trips every fingerprint
//! bit-exactly* — payload bytes and cost bit patterns (NaNs included)
//! survive append → reopen → get unchanged, last write per fingerprint
//! winning; (c) *corruption is survivable* — any truncation or byte
//! flip of the write-ahead file leaves reopen panic-free, every record
//! wholly before the damage still served intact, and the file usable
//! for new appends.
//!
//! The telemetry layer adds three of its own: (a) *bounded rank error*
//! — a [`LatencyHistogram`] quantile never undershoots the true order
//! statistic and overshoots by at most one log-bucket's width (12.5%),
//! while the recorded max is exact; (b) *shard-merge fidelity* — any
//! concurrent interleaving of recordings across the histogram's
//! thread-sharded banks merges to exactly the snapshot sequential
//! recording produces; (c) *span-chain completeness* — every traced
//! job's event chain opens with its admission, closes with exactly one
//! ticket fulfillment, stays inside the [admission, fulfill] window,
//! and orders its core stages enqueue ≤ plan ≤ execute ≤ fulfill, on
//! the executed, in-batch-dedup, and cache-served paths alike.
//!
//! The QoS layer adds two more: (a) *cancel/fulfill races resolve
//! exactly once* — under any interleaving of racing cancellers and the
//! worker's resolver, precisely one side wins the ticket state machine,
//! `cancel()` reports the winner truthfully, every waiter observes the
//! winner's result, and a registered waker fires exactly once; (b) *no
//! priority lane starves* — under any push/pop schedule, the aging
//! escape hatch serves every nonempty lane within a bounded number of
//! dispatches, while delivery stays exactly-once and per-lane FIFO.
//!
//! The workflow DAG coordinator adds three: (a) *dependency-release
//! ordering* — on any random DAG, the session completion stream never
//! delivers a node before all of its parents, because a node is only
//! released into the queues once its last parent's ticket fulfilled;
//! (b) *rejected specs leak nothing* — any cyclic, dangling-edge, or
//! self-edge spec is refused before a single ticket, counter, or
//! registry entry exists; (c) *mid-flood teardown resolves every node
//! exactly once* — under any mix of node cancellations and an engine
//! shutdown racing a flood of workflows, every node ticket resolves,
//! and the extended conservation invariant (`submitted == completed +
//! failed + cancelled + deadline_dropped + orphaned`) closes the books.
//!
//! The federation's consistent-hash router adds the last two: (a)
//! *bounded imbalance* — with ≥ 64 virtual nodes per replica, any ring
//! of ≥ 4 replicas keeps the busiest replica's key share within 1.35×
//! the mean over any drawn fingerprint population; (b) *minimal
//! disruption* — removing one replica remaps exactly the keys it
//! owned (every other key keeps its home), the churn guarantee replica
//! failover leans on to keep surviving caches warm.

use ndft_serve::{
    block_on, CachePolicy, ClusterView, DftJob, DftService, DiskTier, Fingerprint, HashRing,
    JobError, JobTicket, LatencyHistogram, NodeId, Reservation, ResultCache, ServeConfig,
    ShardedQueue, TicketFuture, TicketResolver, TraceEvent, TraceEventKind, WorkflowSpec,
};
use proptest::prelude::*;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Waker that only counts — the property suite's wake observer.
struct CountingWake {
    wakes: AtomicU64,
}

impl CountingWake {
    fn new() -> Arc<Self> {
        Arc::new(CountingWake {
            wakes: AtomicU64::new(0),
        })
    }

    fn count(&self) -> u64 {
        self.wakes.load(Ordering::SeqCst)
    }
}

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

/// One live future view of the shared ticket, with the model's view of
/// its waker wiring: `current` is the waker the next poll will hand in,
/// `registered` the waker currently sitting in the ticket's registry
/// (i.e. the one handed in at the last `Pending` poll).
struct FutureSlot {
    future: TicketFuture,
    current: usize,
    registered: Option<usize>,
}

/// Builds a job stream from drawn class parameters; the index is the MD
/// seed, so every job has a distinct fingerprint even within a class.
fn job_stream(classes: &[(u64, usize)]) -> Vec<DftJob> {
    classes
        .iter()
        .enumerate()
        .map(|(i, &(cells, steps))| DftJob::MdSegment {
            atoms: (cells as usize) * 8,
            steps,
            temperature_k: 300.0,
            seed: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of home drains and steals delivers every
    /// fingerprint exactly once — nothing lost, nothing duplicated.
    #[test]
    fn sharded_submit_drain_preserves_every_fingerprint_exactly_once(
        classes in prop::collection::vec((1u64..5, 1usize..4), 1..40),
        shards in 1usize..5,
        workers in 1usize..5,
        schedule in prop::collection::vec((0usize..8, 1usize..6), 0..120),
    ) {
        let jobs = job_stream(&classes);
        // Capacity sized so even a fully skewed mix fits one shard.
        let q: ShardedQueue<Fingerprint> =
            ShardedQueue::new(shards, jobs.len() * shards);
        for job in &jobs {
            q.try_push(job.workload_class().shard_key(), job.fingerprint()).unwrap();
        }
        prop_assert_eq!(q.len(), jobs.len());

        // Replay the drawn dispatcher schedule: each step is one worker
        // doing exactly what `worker_loop` does — home drain first, then
        // steal from the most-loaded victim.
        let mut collected: Vec<Fingerprint> = Vec::new();
        for &(w, max_batch) in &schedule {
            let home = (w % workers) % shards;
            if let Some(batch) = q.try_pop_home(home, max_batch) {
                collected.extend(batch);
            } else if let Some(run) = q.try_steal(home, max_batch) {
                prop_assert!(run.from_shard != home, "never steals from home");
                prop_assert!(!run.items.is_empty(), "a steal always carries items");
                collected.extend(run.items);
            }
        }
        // Whatever the schedule left behind is the shutdown sweep's job.
        q.close();
        collected.extend(q.drain_all());

        let mut want: Vec<Fingerprint> = jobs.iter().map(DftJob::fingerprint).collect();
        want.sort();
        collected.sort();
        prop_assert_eq!(collected, want, "fingerprint multiset must survive");
    }

    /// Stolen runs are key-coherent: every item in one steal shares the
    /// victim's reported shard key, so the run batches under one plan.
    #[test]
    fn stolen_runs_share_one_shard_key(
        classes in prop::collection::vec((1u64..5, 1usize..4), 2..40),
        shards in 2usize..5,
    ) {
        let jobs = job_stream(&classes);
        let q: ShardedQueue<(u64, Fingerprint)> =
            ShardedQueue::new(shards, jobs.len() * shards);
        for job in &jobs {
            let key = job.workload_class().shard_key();
            q.try_push(key, (key, job.fingerprint())).unwrap();
        }
        // Steal everything through a thief homed on each shard in turn.
        let mut rounds = 0usize;
        loop {
            let mut stole_any = false;
            for thief in 0..shards {
                if let Some(run) = q.try_steal(thief, usize::MAX) {
                    prop_assert!(run.items.iter().all(|&(k, _)| k == run.key),
                        "run mixes shard keys");
                    stole_any = true;
                }
            }
            rounds += 1;
            if !stole_any || rounds > jobs.len() + shards {
                break;
            }
        }
        // With >= 2 shards a thief reaches every other shard; only the
        // thief-cycle's blind spot (nothing) may remain.
        prop_assert!(q.is_empty() || shards == 1);
    }

    /// After ANY schedule of batch completions and panics, the cluster
    /// view returns to exactly zero reservations — the panic-safe worker
    /// path cannot leak modeled busy time into future placement
    /// decisions. Ops are (shard, cpu_tenths, ndp_tenths, action):
    /// action 0 reserves and holds, 1 releases the oldest held
    /// reservation, 2 releases the newest, and 3 simulates a worker
    /// panicking mid-batch with the reservation live (the `Drop` guard
    /// must release it during unwind, exactly as in
    /// `process_batch`'s `catch_unwind`).
    #[test]
    fn cluster_reservations_never_leak(
        shards in 1usize..6,
        ops in prop::collection::vec((0usize..8, 0u32..500, 0u32..500, 0usize..4), 0..80),
    ) {
        let view = ClusterView::new(shards);
        let mut held: Vec<Reservation<'_>> = Vec::new();
        let mut live = 0u64; // reservations currently held, cross-checked below
        for &(shard, cpu_tenths, ndp_tenths, action) in &ops {
            let (cpu_s, ndp_s) = (cpu_tenths as f64 / 10.0, ndp_tenths as f64 / 10.0);
            match action {
                0 => {
                    held.push(view.reserve(shard, cpu_s, ndp_s));
                    live += 1;
                }
                1 if !held.is_empty() => {
                    held.remove(0);
                    live -= 1;
                }
                2 if !held.is_empty() => {
                    held.pop();
                    live -= 1;
                }
                3 => {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _guard = view.reserve(shard, cpu_s, ndp_s);
                        panic!("solver panicked mid-batch");
                    }));
                    prop_assert!(result.is_err());
                }
                _ => {}
            }
            // The live aggregate always equals the held count: panicked
            // reservations are gone the moment the unwind passes.
            prop_assert_eq!(view.snapshot().inflight_batches(), live);
        }
        drop(held);
        // Exactly zero — integer-nanosecond bookkeeping means release is
        // exact, not merely within float epsilon.
        prop_assert!(view.is_idle(), "cluster view drifted: {:?}", view.snapshot());
        let s = view.snapshot();
        prop_assert_eq!(s.cpu_reserved_s, 0.0);
        prop_assert_eq!(s.ndp_reserved_s, 0.0);
        prop_assert_eq!(s.inflight_batches(), 0);
    }

    /// The lost-wakeup invariant of the ticket state machine. Ops are
    /// (action, index) applied to a pool of future views of ONE shared
    /// ticket: 0 creates a future (fresh waker), 1 polls one, 2 drops
    /// one, 3 hands a future a fresh waker for its NEXT poll — the old
    /// waker stays registered (and must still fire at fulfillment)
    /// until a later `Pending` poll replaces the entry in place, 4
    /// clones the ticket handle and makes a future from the clone (same
    /// state machine). `fulfill_at` picks where in the schedule
    /// fulfillment lands. Afterwards: wakers registered at
    /// fulfillment time fired exactly once, every other waker exactly
    /// zero times, and every surviving future polls `Ready` — none is
    /// left pending.
    #[test]
    fn ticket_wakers_fire_exactly_once_and_no_future_stays_pending(
        ops in prop::collection::vec((0usize..5, 0usize..8), 1..80),
        fulfill_at in 0usize..81,
    ) {
        let (ticket, resolver) = JobTicket::promise(Fingerprint(0xF00D));
        let mut resolver = Some(resolver);
        let mut wakers: Vec<Arc<CountingWake>> = Vec::new();
        let mut slots: Vec<FutureSlot> = Vec::new();
        // Indices (into `wakers`) expected to fire, snapshotted at the
        // instant of fulfillment; everything else must stay at zero.
        let mut expect_woken: Vec<usize> = Vec::new();
        let mut fulfilled = false;

        let fresh_waker = |wakers: &mut Vec<Arc<CountingWake>>| {
            wakers.push(CountingWake::new());
            wakers.len() - 1
        };
        let new_slot = |t: &JobTicket, wakers: &mut Vec<Arc<CountingWake>>| FutureSlot {
            future: t.future(),
            current: {
                wakers.push(CountingWake::new());
                wakers.len() - 1
            },
            registered: None,
        };

        let fulfill = |resolver: &mut Option<TicketResolver>,
                           slots: &[FutureSlot],
                           expect_woken: &mut Vec<usize>| {
            // The registry at this instant is exactly the live slots'
            // last-Pending wakers; fulfillment must fire each once.
            expect_woken.extend(slots.iter().filter_map(|s| s.registered));
            resolver.take().expect("fulfill once").fulfill(Err(JobError::ShutDown));
        };

        let fulfill_pos = fulfill_at.min(ops.len());
        for (step, &(action, index)) in ops.iter().enumerate() {
            if step == fulfill_pos && !fulfilled {
                fulfill(&mut resolver, &slots, &mut expect_woken);
                fulfilled = true;
            }
            match action {
                0 => slots.push(new_slot(&ticket, &mut wakers)),
                1 if !slots.is_empty() => {
                    let pick = index % slots.len();
                    let slot = &mut slots[pick];
                    let waker = Waker::from(Arc::clone(&wakers[slot.current]));
                    let mut cx = Context::from_waker(&waker);
                    match Pin::new(&mut slot.future).poll(&mut cx) {
                        Poll::Ready(result) => {
                            prop_assert!(fulfilled, "Ready before fulfillment");
                            prop_assert_eq!(result.unwrap_err(), JobError::ShutDown);
                            slot.registered = None;
                        }
                        Poll::Pending => {
                            prop_assert!(!fulfilled, "pending after fulfillment");
                            // A Pending poll (re)registers: the previous
                            // registration is replaced in place.
                            slot.registered = Some(slot.current);
                        }
                    }
                }
                2 if !slots.is_empty() => {
                    // Dropping deregisters: the waker must never fire
                    // (pre-fulfill) — post-fulfill its fate was already
                    // sealed at fulfillment time.
                    slots.swap_remove(index % slots.len());
                }
                3 if !slots.is_empty() => {
                    let pick = index % slots.len();
                    slots[pick].current = fresh_waker(&mut wakers);
                }
                4 => slots.push(new_slot(&ticket.clone(), &mut wakers)),
                _ => {}
            }
        }
        if !fulfilled {
            fulfill(&mut resolver, &slots, &mut expect_woken);
        }

        // No future is left pending after fulfillment.
        for slot in &mut slots {
            let waker = Waker::from(Arc::clone(&wakers[slot.current]));
            let mut cx = Context::from_waker(&waker);
            match Pin::new(&mut slot.future).poll(&mut cx) {
                Poll::Ready(result) => prop_assert_eq!(result.unwrap_err(), JobError::ShutDown),
                Poll::Pending => prop_assert!(false, "future pending after fulfillment"),
            }
        }
        prop_assert!(ticket.is_done());

        // Exactly-once accounting: registered-at-fulfillment wakers
        // fired once, everything else (replaced, dropped, post-fulfill,
        // never-registered) exactly zero times.
        for (i, waker) in wakers.iter().enumerate() {
            let expected = u64::from(expect_woken.contains(&i));
            prop_assert_eq!(
                waker.count(),
                expected,
                "waker {} fired {} times, expected {}",
                i,
                waker.count(),
                expected
            );
        }
    }
}

/// The same invariant under real thread interleavings: many `block_on`
/// waiters race one fulfiller; every waiter must resolve (no lost
/// wakeup ⇒ no hang) with the shared result.
#[test]
fn concurrent_block_on_waiters_never_miss_the_wakeup() {
    for _round in 0..64 {
        let (ticket, resolver) = JobTicket::promise(Fingerprint(0xBEEF));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let future = ticket.future();
                std::thread::spawn(move || block_on(future))
            })
            .collect();
        // No synchronization on purpose: fulfillment races the waiters'
        // first polls, exercising both the register-then-wake and the
        // observe-result-directly paths.
        resolver.fulfill(Err(JobError::ShutDown));
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap().unwrap_err(), JobError::ShutDown);
        }
    }
}

// ---------------------------------------------------------------------
// Two-tier cache properties
// ---------------------------------------------------------------------

/// A unique scratch directory per proptest case (cases run in one
/// process, possibly on several threads).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ndft-serve-prop-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Σ cost over the keys a cache actually holds, via `peek` (which
/// never touches counters or scores).
fn resident_cost(cache: &ResultCache<usize>, costs: &[f64]) -> f64 {
    (0..costs.len())
        .filter(|&k| cache.peek(&Fingerprint(k as u128)).is_some())
        .map(|k| costs[k])
        .sum()
}

proptest! {
    /// Cache property (a): cost domination. Random schedules of costed
    /// inserts (fresh fingerprints, random costs — the engine's
    /// regime: a result is inserted when it was executed, i.e. when it
    /// was *not* resident) interleaved with lookups of arbitrary
    /// earlier keys; at every prefix the cost-weighted cache ends
    /// holding at least as much total modeled cost as the FIFO cache
    /// fed the identical schedule, and both policies' retained-cost
    /// gauges match an independent recount of their residents.
    ///
    /// Scope note: domination is a theorem for fresh-fingerprint
    /// schedules (the eviction clock is monotone, so whenever the
    /// cost-weighted policy prefers an older entry over a younger one,
    /// the older one costs strictly more). It is deliberately *not*
    /// claimed for schedules that re-insert a fingerprint the cache
    /// still holds: aging exists precisely so a stale expensive entry
    /// can eventually lose to fresh traffic, and an adversarial repeat
    /// pattern can make FIFO's window luckier on one draw. The repeat
    /// regime is covered end-to-end by `serve_study` part 6, which
    /// gates cost-weighted retention strictly above FIFO's on the
    /// skewed repeat mix, and by the unit suite in `cache.rs`.
    #[test]
    fn cost_weighted_retains_at_least_fifo_cost(
        capacity in 1usize..8,
        ops in proptest::collection::vec((0u8..4, 0.0f64..100.0), 1..250),
    ) {
        let fifo: ResultCache<usize> = ResultCache::new(capacity, CachePolicy::Fifo);
        let weighted: ResultCache<usize> = ResultCache::new(capacity, CachePolicy::CostWeighted);
        let mut costs: Vec<f64> = Vec::new();
        for (op, x) in ops {
            if op < 3 {
                // Inserts outnumber lookups: eviction churn is the point.
                let key = Fingerprint(costs.len() as u128);
                fifo.insert_costed(key, costs.len(), x);
                weighted.insert_costed(key, costs.len(), x);
                costs.push(x);
            } else if !costs.is_empty() {
                let key = Fingerprint((x as usize % costs.len()) as u128);
                // Lookups never perturb either policy's eviction state
                // (hits are read-lock-only) — but both caches must
                // agree with their own bookkeeping below regardless.
                let _ = (fifo.get(&key), weighted.get(&key));
            }
            prop_assert!(
                weighted.cost_retained_s() >= fifo.cost_retained_s() - 1e-9,
                "cost-weighted retained {} < fifo {}",
                weighted.cost_retained_s(),
                fifo.cost_retained_s()
            );
        }
        prop_assert!(fifo.len() <= capacity);
        prop_assert!(weighted.len() <= capacity);
        // The gauge is exactly the residents' cost sum, for both.
        prop_assert!((fifo.stats().cost_retained_s - resident_cost(&fifo, &costs)).abs() < 1e-6);
        prop_assert!(
            (weighted.stats().cost_retained_s - resident_cost(&weighted, &costs)).abs() < 1e-6
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache property (b): the disk tier round-trips every fingerprint
    /// bit-exactly across a reopen — payload bytes verbatim and the
    /// cost's full IEEE-754 bit pattern (arbitrary bits, NaNs and all),
    /// with the last write per fingerprint winning.
    #[test]
    fn disk_tier_roundtrips_every_fingerprint_bit_exactly(
        records in proptest::collection::vec(
            (
                // The stub's `any` stops at 64 bits; two lanes splice
                // into the full 128-bit fingerprint domain.
                (any::<u64>(), any::<u64>()),
                proptest::collection::vec(any::<u8>(), 0..200),
                any::<u64>(),
            ),
            1..24,
        ),
    ) {
        let records: Vec<(u128, Vec<u8>, u64)> = records
            .into_iter()
            .map(|((hi, lo), payload, cost)| (((hi as u128) << 64) | lo as u128, payload, cost))
            .collect();
        let dir = scratch_dir("roundtrip");
        {
            let tier = DiskTier::open(&dir).unwrap();
            for (fp, payload, cost_bits) in &records {
                tier.append(Fingerprint(*fp), f64::from_bits(*cost_bits), payload);
            }
        }
        let tier = DiskTier::open(&dir).unwrap();
        let mut last: std::collections::HashMap<u128, (&[u8], u64)> =
            std::collections::HashMap::new();
        for (fp, payload, cost_bits) in &records {
            last.insert(*fp, (payload.as_slice(), *cost_bits));
        }
        prop_assert_eq!(tier.len(), last.len());
        for (fp, (payload, cost_bits)) in last {
            let (bytes, cost) = tier.get(&Fingerprint(fp)).expect("record present");
            prop_assert_eq!(bytes.as_slice(), payload);
            prop_assert_eq!(cost.to_bits(), cost_bits, "cost bit pattern changed");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Cache property (c): corruption is survivable. Truncate the WAL
    /// and/or flip one byte anywhere in it; reopening must not panic,
    /// every record lying wholly before the damage must still be
    /// served intact, everything at or past it must be gone (never
    /// garbage), and the tier must accept fresh appends afterwards.
    #[test]
    fn corrupted_wal_is_skipped_never_panics(
        n_records in 1usize..12,
        payload_len in 1usize..64,
        damage_at in any::<u64>(),
        mode in 0u8..3,
    ) {
        let dir = scratch_dir("corrupt");
        let mut ends = Vec::new(); // end offset of each record
        let path = {
            let tier = DiskTier::open(&dir).unwrap();
            for i in 0..n_records {
                let payload: Vec<u8> = (0..payload_len).map(|b| (b + i) as u8).collect();
                tier.append(Fingerprint(i as u128), i as f64, &payload);
                ends.push(tier.bytes_persisted());
            }
            tier.path().to_path_buf()
        };
        let file_len = std::fs::metadata(&path).unwrap().len();
        let offset = damage_at % file_len;
        // mode 0: truncate at `offset`; mode 1: flip the byte there;
        // mode 2: both.
        if mode != 1 {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(offset)
                .unwrap();
        }
        if mode != 0 && offset < file_len {
            let mut bytes = std::fs::read(&path).unwrap();
            if let Some(b) = bytes.get_mut(offset as usize) {
                *b ^= 0xFF;
                std::fs::write(&path, &bytes).unwrap();
            }
        }
        // Reopen: must not panic, whatever the damage.
        let tier = DiskTier::open(&dir).unwrap();
        for (i, end) in ends.iter().enumerate() {
            let got = tier.get(&Fingerprint(i as u128));
            if *end <= offset {
                let (bytes, cost) = got.expect("undamaged record survives");
                let expect: Vec<u8> = (0..payload_len).map(|b| (b + i) as u8).collect();
                prop_assert_eq!(bytes, expect);
                prop_assert_eq!(cost, i as f64);
            } else {
                prop_assert!(got.is_none(), "damaged tail must not resurface");
            }
        }
        // The recovered file accepts appends and serves them.
        tier.append(Fingerprint(0xFFFF), 1.5, b"fresh after recovery");
        prop_assert_eq!(
            tier.get(&Fingerprint(0xFFFF)).unwrap().0.as_slice(),
            b"fresh after recovery".as_slice()
        );
        drop(tier);
        let reopened = DiskTier::open(&dir).unwrap();
        prop_assert!(reopened.get(&Fingerprint(0xFFFF)).is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A histogram quantile never undershoots the true order statistic
    /// and overshoots it by at most one sub-bucket (12.5%), whatever
    /// the value stream and whatever quantile is asked for.
    #[test]
    fn histogram_quantiles_bound_rank_error(
        values in prop::collection::vec(0u64..5_000_000_000, 1..400),
        qs in prop::collection::vec(0.0f64..=1.0, 1..6),
    ) {
        let h = LatencyHistogram::new();
        for &v in &values {
            h.record_ns(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(s.max_ns(), *sorted.last().unwrap(), "max is exact");
        prop_assert_eq!(s.quantile_ns(1.0), s.max_ns(), "top quantile is the max");
        for &q in &qs {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = s.quantile_ns(q);
            prop_assert!(est >= truth, "q={} estimate {} below true {}", q, est, truth);
            prop_assert!(
                est - truth <= truth / 8,
                "q={} estimate {} more than 12.5% above true {}",
                q, est, truth
            );
        }
    }

    /// Concurrent recording across thread-sharded banks merges to
    /// exactly the snapshot sequential recording produces: no sample is
    /// lost, duplicated, or rebucketed by the sharding.
    #[test]
    fn histogram_concurrent_recording_merges_to_sequential_reference(
        chunks in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000_000, 1..64),
            1..8,
        ),
    ) {
        let concurrent = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for chunk in &chunks {
                let h = &concurrent;
                scope.spawn(move || {
                    for &v in chunk {
                        h.record_ns(v);
                    }
                });
            }
        });
        let reference = LatencyHistogram::new();
        for chunk in &chunks {
            for &v in chunk {
                reference.record_ns(v);
            }
        }
        prop_assert_eq!(concurrent.snapshot(), reference.snapshot());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QoS property (a): a cancellation racing the worker's resolver
    /// never loses a resolution and never double-wakes. Exactly one
    /// side wins the ticket state machine — `cancel()` returns `true`
    /// for at most one canceller, and only when the ticket actually
    /// resolved `Cancelled`; otherwise every waiter sees the resolver's
    /// result. A waker registered before the race fires exactly once
    /// whichever side wins, and the future is never left pending.
    #[test]
    fn cancel_racing_the_resolver_resolves_exactly_once(
        cancellers in 1usize..4,
        pre_poll in any::<bool>(),
    ) {
        let (ticket, resolver) = JobTicket::promise(Fingerprint(0x0C));
        let wake = CountingWake::new();
        let mut future = ticket.future();
        if pre_poll {
            let waker = Waker::from(Arc::clone(&wake));
            let mut cx = Context::from_waker(&waker);
            prop_assert!(Pin::new(&mut future).poll(&mut cx).is_pending());
        }
        // No synchronization on purpose: the fulfill and every cancel
        // race through `fulfill_first`'s single compare-and-settle.
        let cancel_wins = std::thread::scope(|scope| {
            let fulfiller = scope.spawn(move || resolver.fulfill(Err(JobError::ShutDown)));
            let handles: Vec<_> = (0..cancellers)
                .map(|_| {
                    let t = ticket.clone();
                    scope.spawn(move || t.cancel())
                })
                .collect();
            fulfiller.join().unwrap();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        prop_assert!(cancel_wins <= 1, "{cancel_wins} cancellers claimed the resolution");
        let err = ticket.wait().unwrap_err();
        if cancel_wins == 1 {
            prop_assert_eq!(err, JobError::Cancelled);
        } else {
            prop_assert_eq!(err, JobError::ShutDown);
        }
        // The pre-registered waker fired exactly once; with no
        // registration nothing ever fires.
        prop_assert_eq!(wake.count(), u64::from(pre_poll));
        // And the future resolves with the winner's result — no lost
        // wakeup, no stale pending state.
        let waker = Waker::from(Arc::clone(&wake));
        let mut cx = Context::from_waker(&waker);
        match Pin::new(&mut future).poll(&mut cx) {
            Poll::Ready(result) => prop_assert_eq!(result.unwrap_err(), err),
            Poll::Pending => prop_assert!(false, "future pending after resolution"),
        }
    }

    /// QoS property (b): no priority lane starves. Whatever push/pop
    /// schedule the dispatcher runs, a lane with queued work is served
    /// within `LANE_AGING_LIMIT + PRIORITY_LANES` dispatches of its
    /// last service (age to the limit, then wait out at most one serve
    /// of each other aged lane), every item is delivered exactly once,
    /// and each lane drains in FIFO order.
    #[test]
    fn no_priority_lane_starves_under_any_push_pop_schedule(
        ops in prop::collection::vec((0usize..5, 0usize..3), 1..200),
    ) {
        use ndft_serve::queue::{LANE_AGING_LIMIT, PRIORITY_LANES};

        let q: ShardedQueue<u64> = ShardedQueue::new(1, 1024);
        let mut model: [std::collections::VecDeque<u64>; 3] = Default::default();
        let mut next_id = 0u64;
        let mut pushed: Vec<u64> = Vec::new();
        let mut collected: Vec<u64> = Vec::new();
        let bound = LANE_AGING_LIMIT + PRIORITY_LANES as u32;
        // Dispatches each nonempty lane has been passed over since its
        // last service — the model's shadow of the shard's aging clock.
        let mut waits = [0u32; 3];
        for &(op, lane) in &ops {
            if op < 3 {
                // Ops 0-2 push into `lane`; the id encodes the lane so
                // each pop reveals which lane the queue actually served.
                let id = next_id * 10 + lane as u64;
                next_id += 1;
                q.try_push_at(0, lane, id).unwrap();
                model[lane].push_back(id);
                pushed.push(id);
            } else if let Some(batch) = q.try_pop_home(0, 1) {
                prop_assert_eq!(batch.len(), 1);
                let got = batch[0];
                let served = (got % 10) as usize;
                prop_assert_eq!(
                    model[served].pop_front(),
                    Some(got),
                    "lane {} served out of FIFO order",
                    served
                );
                waits[served] = 0;
                for (l, w) in waits.iter_mut().enumerate() {
                    if l != served && !model[l].is_empty() {
                        *w += 1;
                        prop_assert!(
                            *w <= bound,
                            "lane {} starved: {} dispatches without service",
                            l,
                            *w
                        );
                    }
                }
                collected.push(got);
            }
        }
        // Whatever the schedule left queued is the shutdown sweep's.
        q.close();
        collected.extend(q.drain_all());
        pushed.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(collected, pushed, "every item delivered exactly once");
    }
}

/// The batch-scoped reservation-hold and fused-execution spans are
/// annotated on the planning member's lane *after* its ticket fulfills,
/// so per-job chain checks exclude them.
fn job_chain(events: &[&TraceEvent]) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e.kind,
                TraceEventKind::ReservationHold | TraceEventKind::FusedExec { .. }
            )
        })
        .map(|e| **e)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every traced job's span chain is monotone and complete: it opens
    /// with the admission event, every span lies inside
    /// [admission, fulfill-end], the core stages order as
    /// enqueue <= plan <= execute <= fulfill, and exactly one ticket
    /// fulfillment closes the chain — on the executed, in-batch-dedup,
    /// and submission-time cache-hit paths alike.
    #[test]
    fn trace_span_chains_are_monotone_and_complete(
        seeds in prop::collection::vec(0u64..5, 2..20),
        workers in 1usize..4,
        shards in 1usize..3,
    ) {
        let svc = DftService::start(ServeConfig {
            workers,
            shards,
            queue_capacity: 256,
            ..ServeConfig::default()
        });
        let collector = svc.trace();
        // Repeated seeds force the dedup and cache-hit paths.
        let tickets: Vec<_> = seeds
            .iter()
            .map(|&s| {
                svc.submit_blocking(DftJob::MdSegment {
                    atoms: 64,
                    steps: 2,
                    temperature_k: 300.0,
                    seed: s,
                })
                .unwrap()
            })
            .collect();
        for t in &tickets {
            prop_assert!(t.wait().is_ok());
        }
        let report = svc.shutdown();
        prop_assert_eq!(report.completed, seeds.len() as u64);

        let events = collector.drain();
        let mut per_trace: std::collections::HashMap<u64, Vec<&TraceEvent>> =
            std::collections::HashMap::new();
        for e in &events {
            per_trace.entry(e.trace.0).or_default().push(e);
        }
        // Every submission got its own trace lane, duplicates included.
        prop_assert_eq!(per_trace.len(), seeds.len());

        for (id, evs) in &per_trace {
            // Ring order is seq order, per lane too.
            for w in evs.windows(2) {
                prop_assert!(w[0].seq < w[1].seq, "trace {} seq out of order", id);
            }
            let chain = job_chain(evs);
            // Complete: exactly one terminal fulfill event.
            let fulfills = chain
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::TicketFulfill { .. }))
                .count();
            prop_assert_eq!(fulfills, 1, "trace {} must fulfill exactly once", id);
            let last = chain.last().unwrap();
            prop_assert!(
                matches!(last.kind, TraceEventKind::TicketFulfill { ok: true, .. }),
                "trace {} ends with its (successful) fulfill",
                id
            );
            // Opens with admission: an Enqueue for queued jobs, a
            // CacheHit for submission-time serves.
            let first = chain.first().unwrap();
            prop_assert!(
                matches!(
                    first.kind,
                    TraceEventKind::Enqueue { .. } | TraceEventKind::CacheHit { .. }
                ),
                "trace {} opens with {:?}",
                id,
                first.kind
            );
            // Monotone: everything inside [admission, fulfill-end].
            for e in &chain {
                prop_assert!(e.start_ns >= first.start_ns, "trace {} starts early", id);
                prop_assert!(e.end_ns() <= last.end_ns(), "trace {} ends late", id);
            }
            // Core stage ordering: enqueue <= plan <= execute <= fulfill.
            let start_of = |want: fn(&TraceEventKind) -> bool| {
                chain.iter().find(|e| want(&e.kind)).map(|e| e.start_ns)
            };
            let plan = start_of(|k| matches!(k, TraceEventKind::PlannerConsult));
            let exec = start_of(|k| matches!(k, TraceEventKind::Numerics { .. }));
            let mut order = vec![first.start_ns];
            order.extend(plan);
            order.extend(exec);
            order.push(last.start_ns);
            for w in order.windows(2) {
                prop_assert!(w[0] <= w[1], "trace {} core stages out of order", id);
            }
            // Executed chains carry the numerics + store evidence;
            // cached chains carry the hit instead.
            match last.kind {
                TraceEventKind::TicketFulfill { cached: false, .. } => {
                    prop_assert!(exec.is_some(), "executed trace {} missing numerics", id);
                    prop_assert!(
                        chain.iter().any(|e| matches!(e.kind, TraceEventKind::CacheStore)),
                        "executed trace {} missing cache store",
                        id
                    );
                }
                TraceEventKind::TicketFulfill { cached: true, .. } => {
                    prop_assert!(
                        chain.iter().any(|e| matches!(e.kind, TraceEventKind::CacheHit { .. })),
                        "cached trace {} missing its hit",
                        id
                    );
                    prop_assert!(exec.is_none(), "cached trace {} ran numerics", id);
                }
                _ => unreachable!(),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bounded imbalance: with at least 64 vnodes per replica, the
    /// busiest replica of a ≥4-replica ring owns at most 1.35× the
    /// mean key share of any fingerprint population — the balance
    /// budget the federated bench gate assumes.
    #[test]
    fn ring_balance_stays_within_budget(
        replicas in 4usize..9,
        vnodes in 64usize..129,
        keys in prop::collection::vec((any::<u64>(), any::<u64>()), 512..2048),
    ) {
        let mut ring = HashRing::new(vnodes);
        for r in 0..replicas {
            ring.add_replica(r);
        }
        let fingerprints: Vec<Fingerprint> = keys
            .iter()
            .map(|&(hi, lo)| Fingerprint(((hi as u128) << 64) | lo as u128))
            .collect();
        let shares = ring.shares(&fingerprints);
        let mean = fingerprints.len() as f64 / replicas as f64;
        for r in 0..replicas {
            let share = shares.get(&r).copied().unwrap_or(0) as f64;
            prop_assert!(
                share <= mean * 1.35,
                "replica {} owns {} of {} keys (mean {:.1}, budget {:.1})",
                r, share, fingerprints.len(), mean, mean * 1.35
            );
        }
    }

    /// Minimal disruption: removing one replica remaps exactly the
    /// keys it owned. Every key homed elsewhere keeps its home — the
    /// guarantee that a replica kill never cools a survivor's cache.
    #[test]
    fn ring_removal_remaps_only_the_dead_replicas_keys(
        replicas in 2usize..8,
        vnodes in 16usize..97,
        keys in prop::collection::vec((any::<u64>(), any::<u64>()), 256..1024),
        dead_pick in any::<usize>(),
    ) {
        let mut ring = HashRing::new(vnodes);
        for r in 0..replicas {
            ring.add_replica(r);
        }
        let dead = dead_pick % replicas;
        let before: Vec<(Fingerprint, usize)> = keys
            .iter()
            .map(|&(hi, lo)| {
                let fp = Fingerprint(((hi as u128) << 64) | lo as u128);
                (fp, ring.primary(fp).unwrap())
            })
            .collect();
        ring.remove_replica(dead);
        for (fp, home) in before {
            let after = ring.primary(fp).unwrap();
            if home == dead {
                prop_assert_ne!(after, dead, "key still routed to the dead replica");
            } else {
                prop_assert_eq!(
                    after, home,
                    "key homed on live replica {} was remapped to {}", home, after
                );
            }
        }
    }
}

/// Random DAG over `n` nodes: every forward pair `(i, j)` with `i < j`
/// gets an edge when its bit of `edge_bits` is set, so the graph is
/// acyclic by construction while its shape (chains, diamonds, fan-out,
/// disconnected islands) is fully randomized. Returns the spec plus
/// each node's parent list for the oracle.
fn random_dag(
    n: usize,
    edge_bits: u64,
    steps: usize,
    seed_base: u64,
) -> (WorkflowSpec, Vec<Vec<usize>>) {
    let mut spec = WorkflowSpec::new();
    let ids: Vec<NodeId> = (0..n)
        .map(|i| {
            spec.add_node(DftJob::MdSegment {
                atoms: 8,
                steps,
                temperature_k: 300.0,
                seed: seed_base + i as u64,
            })
        })
        .collect();
    let mut parents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut bit = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if (edge_bits >> (bit % 64)) & 1 == 1 {
                spec.add_edge(ids[i], ids[j]);
                parents[j].push(i);
            }
            bit += 1;
        }
    }
    (spec, parents)
}

fn small_engine() -> DftService {
    DftService::start(ServeConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 256,
        ..ServeConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Dependency-release ordering: whatever random DAG is submitted,
    /// the session's completion stream never delivers a node before
    /// every one of its parents — the coordinator holds each node
    /// outside the queues until its last parent's ticket fulfills, and
    /// fulfillment order is delivery order.
    #[test]
    fn workflow_nodes_complete_only_after_all_parents(
        n in 2usize..9,
        edge_bits in any::<u64>(),
        steps in 1usize..3,
    ) {
        let svc = small_engine();
        let (spec, parents) = random_dag(n, edge_bits, steps, 9000);
        let (session, completions) = svc.session();
        let (workflow, job_ids) =
            session.submit_workflow(spec).expect("forward-edge DAGs are valid");
        let mut finished: Vec<usize> = Vec::new();
        for _ in 0..n {
            let done = completions.next().expect("stream yields every node");
            prop_assert!(done.result.is_ok(), "node failed: {:?}", done.result);
            let node = job_ids
                .iter()
                .position(|&id| id == done.id)
                .expect("completion for a known node id");
            for &p in &parents[node] {
                prop_assert!(
                    finished.contains(&p),
                    "node {} completed before its parent {}",
                    node,
                    p
                );
            }
            finished.push(node);
        }
        prop_assert!(workflow.is_done());
        drop(session);
        let report = svc.shutdown();
        prop_assert!(report.conservation_holds(), "conservation: {report}");
        prop_assert_eq!(report.workflows, 1);
        prop_assert_eq!(report.workflow_released, n as u64);
        prop_assert_eq!(report.orphaned, 0);
    }

    /// Rejected specs leak nothing: a cycle, a dangling edge, or a
    /// self edge is refused during validation — before any node
    /// ticket, metrics counter, or registry entry exists — so the
    /// engine's books stay at zero.
    #[test]
    fn invalid_workflow_specs_leak_no_tickets_or_state(
        n in 1usize..7,
        defect in 0usize..3,
        salt in any::<u64>(),
    ) {
        let svc = small_engine();
        let mut spec = WorkflowSpec::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| {
                spec.add_node(DftJob::MdSegment {
                    atoms: 8,
                    steps: 1,
                    temperature_k: 300.0,
                    seed: i as u64,
                })
            })
            .collect();
        match defect {
            0 => {
                let v = (salt as usize) % n;
                spec.add_edge(ids[v], ids[v]);
            }
            1 => {
                spec.add_edge(ids[0], NodeId(n + (salt as usize % 4)));
            }
            _ => {
                // A chain with a back edge; degenerates to a self edge
                // for n == 1, which is rejected just the same.
                for w in ids.windows(2) {
                    spec.add_edge(w[0], w[1]);
                }
                spec.add_edge(ids[n - 1], ids[0]);
            }
        }
        prop_assert!(svc.submit_workflow(spec).is_err());
        let report = svc.shutdown();
        prop_assert_eq!(report.submitted, 0);
        prop_assert_eq!(report.workflows, 0);
        prop_assert_eq!(report.orphaned, 0);
        prop_assert_eq!(report.tickets_outstanding, 0);
        prop_assert!(report.conservation_holds(), "conservation: {report}");
    }

    /// Mid-flood teardown: a flood of workflows races a drawn set of
    /// node cancellations and then an engine shutdown. Every node
    /// ticket must resolve exactly once — completed, failed,
    /// cancelled, or orphaned — and the extended conservation
    /// invariant closes the engine's books.
    #[test]
    fn midflood_cancel_and_shutdown_resolve_every_node_exactly_once(
        n in 3usize..8,
        flood in 1usize..4,
        edge_bits in any::<u64>(),
        cancel_bits in any::<u64>(),
    ) {
        let svc = small_engine();
        let mut workflows = Vec::new();
        for w in 0..flood {
            // Rotate the edge mask per workflow so the flood carries
            // different shapes; distinct seeds dodge the result cache.
            let (spec, _) = random_dag(
                n,
                edge_bits.rotate_left(w as u32 * 7),
                2,
                (w * n) as u64,
            );
            workflows.push(svc.submit_workflow(spec).expect("valid DAG"));
        }
        // Cancel a drawn subset of nodes while the flood is in flight:
        // released nodes propagate into the engine's tombstone path,
        // pending nodes orphan themselves and their descendants.
        for (w, workflow) in workflows.iter().enumerate() {
            for i in 0..n {
                if (cancel_bits >> ((w * n + i) % 64)) & 1 == 1 {
                    workflow.node(NodeId(i)).cancel();
                }
            }
        }
        let report = svc.shutdown();
        for workflow in &workflows {
            prop_assert!(workflow.is_done(), "unresolved node after shutdown");
            prop_assert_eq!(workflow.wait_all().len(), n);
        }
        prop_assert_eq!(report.workflows, flood as u64);
        prop_assert_eq!(report.tickets_outstanding, 0);
        prop_assert!(report.conservation_holds(), "conservation: {report}");
    }
}

/// One job drawn from a compact code for the fused-execution
/// differential: a mix of fusable kinds (ground states sharing a
/// Hamiltonian, MD segments sharing a bond list) and kinds with no
/// shareable operand, with repeats so the dedup/cache paths engage too.
fn fused_mix_job(code: u64) -> DftJob {
    let variant = code / 4;
    match code % 4 {
        0 => DftJob::GroundState {
            atoms: 8,
            bands: 2 + (variant % 4) as usize,
            max_iterations: 3,
        },
        1 => DftJob::MdSegment {
            atoms: 64,
            steps: 3,
            temperature_k: 300.0,
            seed: variant % 4,
        },
        2 => DftJob::BandStructure {
            atoms: 8,
            segments: 2,
            n_bands: 4 + (variant % 3) as usize,
            scissor_ev: 0.7,
        },
        _ => DftJob::ScfSelfConsistent {
            atoms: 16,
            bands: 4,
            max_iterations: 2,
            occupied: 4,
            cycles: 2,
            alpha: 0.5,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Fused cross-job execution is invisible in results: for any job
    /// mix, the engine with `fused_execution` on and the engine with it
    /// off produce identical fingerprint → payload maps, and both close
    /// the conservation invariant with identical terminal counters —
    /// fusion shares setup, never arithmetic.
    #[test]
    fn fused_execution_preserves_payloads_and_conservation(
        codes in prop::collection::vec(0u64..16, 2..10),
        workers in 1usize..3,
    ) {
        let run = |fused: bool| {
            let svc = DftService::start(ServeConfig {
                workers,
                shards: 2,
                queue_capacity: 256,
                fused_execution: fused,
                ..ServeConfig::default()
            });
            let tickets: Vec<_> = codes
                .iter()
                .map(|&c| svc.submit_blocking(fused_mix_job(c)).unwrap())
                .collect();
            let mut payloads = std::collections::HashMap::new();
            for t in &tickets {
                let outcome = t.wait().expect("every job completes");
                payloads.insert(outcome.fingerprint, outcome.payload.clone());
            }
            (payloads, svc.shutdown())
        };
        let (fused_payloads, fused_report) = run(true);
        let (solo_payloads, solo_report) = run(false);

        prop_assert_eq!(fused_payloads.len(), solo_payloads.len());
        for (fp, fused_payload) in &fused_payloads {
            let solo_payload = solo_payloads
                .get(fp)
                .expect("both engines saw the same fingerprints");
            prop_assert_eq!(fused_payload, solo_payload, "payload diverged for {}", fp);
        }

        prop_assert!(fused_report.conservation_holds(), "fused: {fused_report}");
        prop_assert!(solo_report.conservation_holds(), "solo: {solo_report}");
        prop_assert_eq!(fused_report.submitted, solo_report.submitted);
        prop_assert_eq!(fused_report.completed, solo_report.completed);
        prop_assert_eq!(fused_report.failed, solo_report.failed);
        prop_assert_eq!(fused_report.cancelled, solo_report.cancelled);
        prop_assert_eq!(fused_report.deadline_dropped, solo_report.deadline_dropped);
        prop_assert_eq!(fused_report.orphaned, solo_report.orphaned);
        // The knob really is the only difference: the off engine never
        // fuses anything.
        prop_assert_eq!(solo_report.fused_batches, 0);
        prop_assert_eq!(solo_report.fused_jobs, 0);
        prop_assert_eq!(solo_report.fused_amortized_s, 0.0);
    }
}
