//! Property tests of the sharded submit/drain/steal protocol and the
//! cluster-view reservation lifecycle.
//!
//! The engine's correctness contract is *exactly-once delivery*: every
//! fingerprint pushed into the [`ShardedQueue`] comes out exactly once,
//! whatever interleaving of home drains and steals the dispatcher
//! happens to run. The properties drive the queue through randomized
//! job mixes, shard counts, and dequeue schedules, then check the
//! multiset of fingerprints survives unchanged.
//!
//! The placement layer's analogue is *no reservation leaks*: whatever
//! schedule of batch completions, interleavings, and mid-batch panics
//! the workers see, every [`ClusterView`] reservation is released and
//! the view returns to exactly zero — the property the load-aware
//! planner depends on to never drift.
//!
//! The async client API adds a third contract, the *lost-wakeup
//! invariant* of the ticket state machine: under any interleaving of
//! `poll`, waker registration/replacement, ticket clone, future drop,
//! and `fulfill`, every waker registered at fulfillment time is woken
//! **exactly once**, deregistered or replaced wakers are woken **zero**
//! times, and no future is left pending after fulfillment.

use ndft_serve::{
    block_on, ClusterView, DftJob, Fingerprint, JobError, JobTicket, Reservation, ShardedQueue,
    TicketFuture, TicketResolver,
};
use proptest::prelude::*;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Waker that only counts — the property suite's wake observer.
struct CountingWake {
    wakes: AtomicU64,
}

impl CountingWake {
    fn new() -> Arc<Self> {
        Arc::new(CountingWake {
            wakes: AtomicU64::new(0),
        })
    }

    fn count(&self) -> u64 {
        self.wakes.load(Ordering::SeqCst)
    }
}

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

/// One live future view of the shared ticket, with the model's view of
/// its waker wiring: `current` is the waker the next poll will hand in,
/// `registered` the waker currently sitting in the ticket's registry
/// (i.e. the one handed in at the last `Pending` poll).
struct FutureSlot {
    future: TicketFuture,
    current: usize,
    registered: Option<usize>,
}

/// Builds a job stream from drawn class parameters; the index is the MD
/// seed, so every job has a distinct fingerprint even within a class.
fn job_stream(classes: &[(u64, usize)]) -> Vec<DftJob> {
    classes
        .iter()
        .enumerate()
        .map(|(i, &(cells, steps))| DftJob::MdSegment {
            atoms: (cells as usize) * 8,
            steps,
            temperature_k: 300.0,
            seed: i as u64,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any interleaving of home drains and steals delivers every
    /// fingerprint exactly once — nothing lost, nothing duplicated.
    #[test]
    fn sharded_submit_drain_preserves_every_fingerprint_exactly_once(
        classes in prop::collection::vec((1u64..5, 1usize..4), 1..40),
        shards in 1usize..5,
        workers in 1usize..5,
        schedule in prop::collection::vec((0usize..8, 1usize..6), 0..120),
    ) {
        let jobs = job_stream(&classes);
        // Capacity sized so even a fully skewed mix fits one shard.
        let q: ShardedQueue<Fingerprint> =
            ShardedQueue::new(shards, jobs.len() * shards);
        for job in &jobs {
            q.try_push(job.workload_class().shard_key(), job.fingerprint()).unwrap();
        }
        prop_assert_eq!(q.len(), jobs.len());

        // Replay the drawn dispatcher schedule: each step is one worker
        // doing exactly what `worker_loop` does — home drain first, then
        // steal from the most-loaded victim.
        let mut collected: Vec<Fingerprint> = Vec::new();
        for &(w, max_batch) in &schedule {
            let home = (w % workers) % shards;
            if let Some(batch) = q.try_pop_home(home, max_batch) {
                collected.extend(batch);
            } else if let Some(run) = q.try_steal(home, max_batch) {
                prop_assert!(run.from_shard != home, "never steals from home");
                prop_assert!(!run.items.is_empty(), "a steal always carries items");
                collected.extend(run.items);
            }
        }
        // Whatever the schedule left behind is the shutdown sweep's job.
        q.close();
        collected.extend(q.drain_all());

        let mut want: Vec<Fingerprint> = jobs.iter().map(DftJob::fingerprint).collect();
        want.sort();
        collected.sort();
        prop_assert_eq!(collected, want, "fingerprint multiset must survive");
    }

    /// Stolen runs are key-coherent: every item in one steal shares the
    /// victim's reported shard key, so the run batches under one plan.
    #[test]
    fn stolen_runs_share_one_shard_key(
        classes in prop::collection::vec((1u64..5, 1usize..4), 2..40),
        shards in 2usize..5,
    ) {
        let jobs = job_stream(&classes);
        let q: ShardedQueue<(u64, Fingerprint)> =
            ShardedQueue::new(shards, jobs.len() * shards);
        for job in &jobs {
            let key = job.workload_class().shard_key();
            q.try_push(key, (key, job.fingerprint())).unwrap();
        }
        // Steal everything through a thief homed on each shard in turn.
        let mut rounds = 0usize;
        loop {
            let mut stole_any = false;
            for thief in 0..shards {
                if let Some(run) = q.try_steal(thief, usize::MAX) {
                    prop_assert!(run.items.iter().all(|&(k, _)| k == run.key),
                        "run mixes shard keys");
                    stole_any = true;
                }
            }
            rounds += 1;
            if !stole_any || rounds > jobs.len() + shards {
                break;
            }
        }
        // With >= 2 shards a thief reaches every other shard; only the
        // thief-cycle's blind spot (nothing) may remain.
        prop_assert!(q.is_empty() || shards == 1);
    }

    /// After ANY schedule of batch completions and panics, the cluster
    /// view returns to exactly zero reservations — the panic-safe worker
    /// path cannot leak modeled busy time into future placement
    /// decisions. Ops are (shard, cpu_tenths, ndp_tenths, action):
    /// action 0 reserves and holds, 1 releases the oldest held
    /// reservation, 2 releases the newest, and 3 simulates a worker
    /// panicking mid-batch with the reservation live (the `Drop` guard
    /// must release it during unwind, exactly as in
    /// `process_batch`'s `catch_unwind`).
    #[test]
    fn cluster_reservations_never_leak(
        shards in 1usize..6,
        ops in prop::collection::vec((0usize..8, 0u32..500, 0u32..500, 0usize..4), 0..80),
    ) {
        let view = ClusterView::new(shards);
        let mut held: Vec<Reservation<'_>> = Vec::new();
        let mut live = 0u64; // reservations currently held, cross-checked below
        for &(shard, cpu_tenths, ndp_tenths, action) in &ops {
            let (cpu_s, ndp_s) = (cpu_tenths as f64 / 10.0, ndp_tenths as f64 / 10.0);
            match action {
                0 => {
                    held.push(view.reserve(shard, cpu_s, ndp_s));
                    live += 1;
                }
                1 if !held.is_empty() => {
                    held.remove(0);
                    live -= 1;
                }
                2 if !held.is_empty() => {
                    held.pop();
                    live -= 1;
                }
                3 => {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _guard = view.reserve(shard, cpu_s, ndp_s);
                        panic!("solver panicked mid-batch");
                    }));
                    prop_assert!(result.is_err());
                }
                _ => {}
            }
            // The live aggregate always equals the held count: panicked
            // reservations are gone the moment the unwind passes.
            prop_assert_eq!(view.snapshot().inflight_batches(), live);
        }
        drop(held);
        // Exactly zero — integer-nanosecond bookkeeping means release is
        // exact, not merely within float epsilon.
        prop_assert!(view.is_idle(), "cluster view drifted: {:?}", view.snapshot());
        let s = view.snapshot();
        prop_assert_eq!(s.cpu_reserved_s, 0.0);
        prop_assert_eq!(s.ndp_reserved_s, 0.0);
        prop_assert_eq!(s.inflight_batches(), 0);
    }

    /// The lost-wakeup invariant of the ticket state machine. Ops are
    /// (action, index) applied to a pool of future views of ONE shared
    /// ticket: 0 creates a future (fresh waker), 1 polls one, 2 drops
    /// one, 3 hands a future a fresh waker for its NEXT poll — the old
    /// waker stays registered (and must still fire at fulfillment)
    /// until a later `Pending` poll replaces the entry in place, 4
    /// clones the ticket handle and makes a future from the clone (same
    /// state machine). `fulfill_at` picks where in the schedule
    /// fulfillment lands. Afterwards: wakers registered at
    /// fulfillment time fired exactly once, every other waker exactly
    /// zero times, and every surviving future polls `Ready` — none is
    /// left pending.
    #[test]
    fn ticket_wakers_fire_exactly_once_and_no_future_stays_pending(
        ops in prop::collection::vec((0usize..5, 0usize..8), 1..80),
        fulfill_at in 0usize..81,
    ) {
        let (ticket, resolver) = JobTicket::promise(Fingerprint(0xF00D));
        let mut resolver = Some(resolver);
        let mut wakers: Vec<Arc<CountingWake>> = Vec::new();
        let mut slots: Vec<FutureSlot> = Vec::new();
        // Indices (into `wakers`) expected to fire, snapshotted at the
        // instant of fulfillment; everything else must stay at zero.
        let mut expect_woken: Vec<usize> = Vec::new();
        let mut fulfilled = false;

        let fresh_waker = |wakers: &mut Vec<Arc<CountingWake>>| {
            wakers.push(CountingWake::new());
            wakers.len() - 1
        };
        let new_slot = |t: &JobTicket, wakers: &mut Vec<Arc<CountingWake>>| FutureSlot {
            future: t.future(),
            current: {
                wakers.push(CountingWake::new());
                wakers.len() - 1
            },
            registered: None,
        };

        let fulfill = |resolver: &mut Option<TicketResolver>,
                           slots: &[FutureSlot],
                           expect_woken: &mut Vec<usize>| {
            // The registry at this instant is exactly the live slots'
            // last-Pending wakers; fulfillment must fire each once.
            expect_woken.extend(slots.iter().filter_map(|s| s.registered));
            resolver.take().expect("fulfill once").fulfill(Err(JobError::ShutDown));
        };

        let fulfill_pos = fulfill_at.min(ops.len());
        for (step, &(action, index)) in ops.iter().enumerate() {
            if step == fulfill_pos && !fulfilled {
                fulfill(&mut resolver, &slots, &mut expect_woken);
                fulfilled = true;
            }
            match action {
                0 => slots.push(new_slot(&ticket, &mut wakers)),
                1 if !slots.is_empty() => {
                    let pick = index % slots.len();
                    let slot = &mut slots[pick];
                    let waker = Waker::from(Arc::clone(&wakers[slot.current]));
                    let mut cx = Context::from_waker(&waker);
                    match Pin::new(&mut slot.future).poll(&mut cx) {
                        Poll::Ready(result) => {
                            prop_assert!(fulfilled, "Ready before fulfillment");
                            prop_assert_eq!(result.unwrap_err(), JobError::ShutDown);
                            slot.registered = None;
                        }
                        Poll::Pending => {
                            prop_assert!(!fulfilled, "pending after fulfillment");
                            // A Pending poll (re)registers: the previous
                            // registration is replaced in place.
                            slot.registered = Some(slot.current);
                        }
                    }
                }
                2 if !slots.is_empty() => {
                    // Dropping deregisters: the waker must never fire
                    // (pre-fulfill) — post-fulfill its fate was already
                    // sealed at fulfillment time.
                    slots.swap_remove(index % slots.len());
                }
                3 if !slots.is_empty() => {
                    let pick = index % slots.len();
                    slots[pick].current = fresh_waker(&mut wakers);
                }
                4 => slots.push(new_slot(&ticket.clone(), &mut wakers)),
                _ => {}
            }
        }
        if !fulfilled {
            fulfill(&mut resolver, &slots, &mut expect_woken);
        }

        // No future is left pending after fulfillment.
        for slot in &mut slots {
            let waker = Waker::from(Arc::clone(&wakers[slot.current]));
            let mut cx = Context::from_waker(&waker);
            match Pin::new(&mut slot.future).poll(&mut cx) {
                Poll::Ready(result) => prop_assert_eq!(result.unwrap_err(), JobError::ShutDown),
                Poll::Pending => prop_assert!(false, "future pending after fulfillment"),
            }
        }
        prop_assert!(ticket.is_done());

        // Exactly-once accounting: registered-at-fulfillment wakers
        // fired once, everything else (replaced, dropped, post-fulfill,
        // never-registered) exactly zero times.
        for (i, waker) in wakers.iter().enumerate() {
            let expected = u64::from(expect_woken.contains(&i));
            prop_assert_eq!(
                waker.count(),
                expected,
                "waker {} fired {} times, expected {}",
                i,
                waker.count(),
                expected
            );
        }
    }
}

/// The same invariant under real thread interleavings: many `block_on`
/// waiters race one fulfiller; every waiter must resolve (no lost
/// wakeup ⇒ no hang) with the shared result.
#[test]
fn concurrent_block_on_waiters_never_miss_the_wakeup() {
    for _round in 0..64 {
        let (ticket, resolver) = JobTicket::promise(Fingerprint(0xBEEF));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let future = ticket.future();
                std::thread::spawn(move || block_on(future))
            })
            .collect();
        // No synchronization on purpose: fulfillment races the waiters'
        // first polls, exercising both the register-then-wake and the
        // observe-result-directly paths.
        resolver.fulfill(Err(JobError::ShutDown));
        for waiter in waiters {
            assert_eq!(waiter.join().unwrap().unwrap_err(), JobError::ShutDown);
        }
    }
}
