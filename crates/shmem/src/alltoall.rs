//! Event-simulated all-to-all over the stack interconnect.
//!
//! The machine models in `ndft-core` time the `MPI_Alltoall` phases with
//! an analytic bisection-bandwidth formula. This module *simulates* the
//! same exchange message-by-message over the NoC — every (source,
//! destination) stack pair sends its chunk, links contend, the makespan
//! falls out — so the analytic shortcut can be validated (and the
//! topology ablation extended to the exchange itself).

use ndft_sim::config::SystemConfig;
use ndft_sim::noc::{MeshNoc, Topology};
use serde::{Deserialize, Serialize};

/// Result of one simulated all-to-all exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlltoallReport {
    /// Total payload exchanged between distinct stacks, bytes.
    pub inter_stack_bytes: u64,
    /// Wall-clock of the exchange, seconds.
    pub makespan: f64,
    /// Effective inter-stack bandwidth (bytes / makespan).
    pub effective_bandwidth: f64,
    /// Topology simulated.
    pub topology: Topology,
}

/// Simulates a balanced all-to-all of `volume` total bytes across the
/// stacks: every ordered stack pair (s ≠ d) carries `volume / (S·(S-1))`
/// bytes, sent in `rounds` ring-scheduled phases (the classic Bruck-style
/// schedule: in round k, stack s sends to stack `(s + k) mod S`, so each
/// round forms a permutation with minimal link overlap).
///
/// # Examples
///
/// ```
/// use ndft_shmem::simulate_alltoall;
/// use ndft_sim::{SystemConfig, Topology};
///
/// let cfg = SystemConfig::paper_table3();
/// let r = simulate_alltoall(&cfg, 1 << 30, Topology::Mesh);
/// assert!(r.effective_bandwidth > 50.0e9); // tens of GB/s across the mesh
/// ```
pub fn simulate_alltoall(cfg: &SystemConfig, volume: u64, topology: Topology) -> AlltoallReport {
    let stacks = cfg.mesh.stacks();
    let mut noc = MeshNoc::with_topology(cfg.mesh, topology);
    if stacks < 2 || volume == 0 {
        return AlltoallReport {
            inter_stack_bytes: 0,
            makespan: 0.0,
            effective_bandwidth: 0.0,
            topology,
        };
    }
    let pairs = (stacks * (stacks - 1)) as u64;
    let chunk = (volume / pairs).max(1);
    // Ring-scheduled rounds: round k is the permutation s → s + k.
    let mut stack_clock = vec![0u64; stacks];
    let mut done_max = 0u64;
    for k in 1..stacks {
        for (s, clock) in stack_clock.iter_mut().enumerate() {
            let d = (s + k) % stacks;
            let t = noc.transfer(s, d, chunk, *clock);
            *clock = t.done;
            done_max = done_max.max(t.done);
        }
    }
    let makespan = done_max as f64 / cfg.mesh.clock_hz;
    let bytes = chunk * pairs;
    AlltoallReport {
        inter_stack_bytes: bytes,
        makespan,
        effective_bandwidth: if makespan > 0.0 {
            bytes as f64 / makespan
        } else {
            0.0
        },
        topology,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_table3()
    }

    #[test]
    fn exchanges_every_pair_once() {
        let vol = 16 * 15 * 1000; // 1000 B per ordered pair
        let r = simulate_alltoall(&cfg(), vol, Topology::Mesh);
        assert_eq!(r.inter_stack_bytes, vol);
    }

    #[test]
    fn effective_bandwidth_matches_analytic_bisection_model() {
        // The machine model assumes ~256 GB/s of all-to-all capacity on
        // the 4×4 mesh. The event simulation should land in the same
        // decade — within 3× either way.
        let r = simulate_alltoall(&cfg(), 4 << 30, Topology::Mesh);
        let analytic = 256.0e9;
        assert!(
            r.effective_bandwidth > analytic / 3.0 && r.effective_bandwidth < analytic * 3.0,
            "simulated {:.3e} vs analytic {:.3e}",
            r.effective_bandwidth,
            analytic
        );
    }

    #[test]
    fn topology_ordering_under_ring_schedule() {
        // A scheduling-topology interaction worth pinning down: the naive
        // ring schedule concentrates many flows on the torus's wrap links,
        // so the plain mesh (XY spreads load over middle links) actually
        // finishes the all-to-all *faster* — unlike the one-to-many gather,
        // where the torus's shorter distances win. The 1-D ring is worst
        // by a wide margin either way.
        let vol = 1 << 30;
        let mesh = simulate_alltoall(&cfg(), vol, Topology::Mesh);
        let torus = simulate_alltoall(&cfg(), vol, Topology::Torus);
        let ring = simulate_alltoall(&cfg(), vol, Topology::Ring);
        assert!(
            ring.makespan > mesh.makespan,
            "ring {} mesh {}",
            ring.makespan,
            mesh.makespan
        );
        assert!(ring.makespan > torus.makespan);
        let ratio = torus.makespan / mesh.makespan;
        assert!(ratio > 0.5 && ratio < 3.0, "torus/mesh ratio {ratio}");
    }

    #[test]
    fn makespan_scales_roughly_linearly_with_volume() {
        let small = simulate_alltoall(&cfg(), 1 << 26, Topology::Mesh);
        let large = simulate_alltoall(&cfg(), 1 << 30, Topology::Mesh);
        let ratio = large.makespan / small.makespan;
        assert!(ratio > 8.0 && ratio < 32.0, "16× volume → {ratio}× time");
    }

    #[test]
    fn zero_volume_is_empty() {
        let r = simulate_alltoall(&cfg(), 0, Topology::Mesh);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.inter_stack_bytes, 0);
    }
}
