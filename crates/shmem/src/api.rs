//! The NDFT shared-memory programming interface (paper Table II).
//!
//! Implements the six primitives — `NDFT_Alloc_Shared`, `NDFT_Read`,
//! `NDFT_Write`, `NDFT_Read_Remote`, `NDFT_Write_Remote`,
//! `NDFT_Broadcast` — against the [`SharedBlockStore`] and the mesh NoC,
//! with per-operation latency accounting. Remote operations route through
//! the per-stack communication arbiter; under the hierarchical scheme the
//! arbiter caches fetched blocks in local shared memory so repeated reads
//! from the same stack are served locally (the paper's traffic "filter").

use crate::shared_block::{BlockResidence, SharedBl, SharedBlockStore, ShmemError};
use ndft_sim::config::SystemConfig;
use ndft_sim::noc::MeshNoc;
use serde::{Deserialize, Serialize};

/// Which inter-stack communication scheme the runtime uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommScheme {
    /// §IV-C: one arbiter per stack; remote blocks are fetched once and
    /// cached in local shared memory.
    Hierarchical,
    /// Ablation baseline: every unit fetches remote data itself, no
    /// caching.
    Flat,
}

/// An NDP execution unit: `stack` of the mesh, `unit` within the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnitId {
    /// Stack index (0..16 in the paper configuration).
    pub stack: usize,
    /// NDP unit within the stack (0..8).
    pub unit: usize,
}

/// Outcome of one shared-memory operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpResult {
    /// Latency of the operation in seconds.
    pub latency: f64,
    /// True when the operation crossed stacks.
    pub remote: bool,
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeStats {
    /// Local (intra-stack) reads and writes.
    pub local_ops: u64,
    /// Operations that crossed stacks.
    pub remote_ops: u64,
    /// Remote reads served from the local cached copy (hierarchical
    /// filtering at work).
    pub filtered_ops: u64,
    /// Payload bytes moved across the mesh.
    pub inter_stack_bytes: u64,
    /// Payload bytes served within stacks.
    pub intra_stack_bytes: u64,
}

impl RuntimeStats {
    /// Fraction of remote reads the hierarchical scheme absorbed locally.
    pub fn filter_rate(&self) -> f64 {
        let total = self.remote_ops + self.filtered_ops;
        if total == 0 {
            0.0
        } else {
            self.filtered_ops as f64 / total as f64
        }
    }
}

/// Size of a remote-request control message in bytes.
const REQUEST_MSG_BYTES: u64 = 64;
/// SPM port width per NDP-core cycle.
const SPM_BYTES_PER_CYCLE: f64 = 64.0;

/// The NDFT shared-memory runtime (Table II).
///
/// Operations are replayed on a sequential logical clock: each call starts
/// when the previous one finished, which models a single process's
/// timeline. Batch experiments with per-stack parallelism live in
/// [`crate::arbiter`].
///
/// # Examples
///
/// ```
/// use ndft_shmem::{CommScheme, NdftRuntime, UnitId};
/// use ndft_sim::SystemConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rt = NdftRuntime::new(&SystemConfig::paper_table3(), CommScheme::Hierarchical);
/// let bl = rt.alloc_shared(4096, 0)?;
/// rt.write(UnitId { stack: 0, unit: 0 }, bl, 4096)?;
/// // First remote read pays the mesh; the second is filtered locally.
/// let first = rt.read(UnitId { stack: 7, unit: 0 }, bl, 4096)?;
/// let second = rt.read(UnitId { stack: 7, unit: 1 }, bl, 4096)?;
/// assert!(first.remote && !second.remote);
/// assert!(second.latency < first.latency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NdftRuntime {
    cfg: SystemConfig,
    store: SharedBlockStore,
    noc: MeshNoc,
    scheme: CommScheme,
    stats: RuntimeStats,
    /// Logical time in NoC cycles (sequential trace semantics).
    clock: u64,
}

impl NdftRuntime {
    /// Creates a runtime over a fresh shared-block store.
    pub fn new(cfg: &SystemConfig, scheme: CommScheme) -> Self {
        NdftRuntime {
            cfg: cfg.clone(),
            store: SharedBlockStore::new(cfg),
            noc: MeshNoc::new(cfg.mesh),
            scheme,
            stats: RuntimeStats::default(),
            clock: 0,
        }
    }

    /// Active communication scheme.
    pub fn scheme(&self) -> CommScheme {
        self.scheme
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RuntimeStats {
        self.stats
    }

    /// Borrow of the underlying block store (for footprint inspection).
    pub fn store(&self) -> &SharedBlockStore {
        &self.store
    }

    /// `NDFT_Alloc_Shared`: allocates a block homed on `stack`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShmemError`] from the store.
    pub fn alloc_shared(&mut self, len: u64, stack: usize) -> Result<SharedBl, ShmemError> {
        self.store.alloc(len, stack)
    }

    /// Frees a shared block.
    ///
    /// # Errors
    ///
    /// Propagates [`ShmemError`] from the store.
    pub fn free_shared(&mut self, bl: SharedBl) -> Result<(), ShmemError> {
        self.store.free(bl)
    }

    /// `NDFT_Write`: writes `len` bytes into a block from a unit in the
    /// block's home stack.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] for a dead handle; [`ShmemError::BadStack`]
    /// when the writer is not in the home stack (use
    /// [`Self::write_remote`]).
    pub fn write(&mut self, unit: UnitId, bl: SharedBl, len: u64) -> Result<OpResult, ShmemError> {
        let meta = self.store.meta(bl)?;
        if meta.home_stack != unit.stack {
            return Err(ShmemError::BadStack { stack: unit.stack });
        }
        let latency = self.local_access_latency(bl, len)?;
        self.stats.local_ops += 1;
        self.stats.intra_stack_bytes += len;
        Ok(OpResult {
            latency,
            remote: false,
        })
    }

    /// `NDFT_Read`: reads from a block. If the block (or a cached copy)
    /// is local, the read is served in-stack; otherwise the call behaves
    /// like [`Self::read_remote`].
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] for a dead handle.
    pub fn read(&mut self, unit: UnitId, bl: SharedBl, len: u64) -> Result<OpResult, ShmemError> {
        if self.store.is_cached(bl, unit.stack)? {
            let latency = self.local_access_latency(bl, len)?;
            let meta = self.store.meta(bl)?;
            if meta.home_stack == unit.stack {
                self.stats.local_ops += 1;
            } else {
                self.stats.filtered_ops += 1;
            }
            self.stats.intra_stack_bytes += len;
            return Ok(OpResult {
                latency,
                remote: false,
            });
        }
        self.read_remote(unit, bl, len)
    }

    /// `NDFT_Read_Remote`: fetches block data from its home stack through
    /// the communication arbiters. Under [`CommScheme::Hierarchical`] the
    /// local arbiter caches the block so later reads from this stack are
    /// local.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] for a dead handle.
    pub fn read_remote(
        &mut self,
        unit: UnitId,
        bl: SharedBl,
        len: u64,
    ) -> Result<OpResult, ShmemError> {
        let home = self.store.meta(bl)?.home_stack;
        if home == unit.stack {
            // Degenerate remote read: serve locally.
            let latency = self.local_access_latency(bl, len)?;
            self.stats.local_ops += 1;
            self.stats.intra_stack_bytes += len;
            return Ok(OpResult {
                latency,
                remote: false,
            });
        }
        // Request message to the home arbiter, response with the payload.
        let req = self
            .noc
            .transfer(unit.stack, home, REQUEST_MSG_BYTES, self.clock);
        let resp = self.noc.transfer(home, unit.stack, len, req.done);
        self.clock = resp.done;
        let noc_latency = (resp.done - req.start) as f64 / self.cfg.mesh.clock_hz;
        let local = self.local_access_latency(bl, len)?;
        if self.scheme == CommScheme::Hierarchical {
            self.store.mark_cached(bl, unit.stack)?;
        }
        self.stats.remote_ops += 1;
        self.stats.inter_stack_bytes += len + REQUEST_MSG_BYTES;
        Ok(OpResult {
            latency: noc_latency + local,
            remote: true,
        })
    }

    /// `NDFT_Write_Remote`: pushes `len` bytes into a block homed on
    /// another stack.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] for a dead handle.
    pub fn write_remote(
        &mut self,
        unit: UnitId,
        bl: SharedBl,
        len: u64,
    ) -> Result<OpResult, ShmemError> {
        let home = self.store.meta(bl)?.home_stack;
        if home == unit.stack {
            return self.write(unit, bl, len);
        }
        let push = self
            .noc
            .transfer(unit.stack, home, len + REQUEST_MSG_BYTES, self.clock);
        self.clock = push.done;
        let noc_latency = (push.done - push.start) as f64 / self.cfg.mesh.clock_hz;
        let local = self.local_access_latency(bl, len)?;
        self.stats.remote_ops += 1;
        self.stats.inter_stack_bytes += len + REQUEST_MSG_BYTES;
        Ok(OpResult {
            latency: noc_latency + local,
            remote: true,
        })
    }

    /// `NDFT_Broadcast`: pushes a block's payload from its home stack to
    /// every other stack's shared memory (marking them cached).
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] for a dead handle.
    pub fn broadcast(&mut self, bl: SharedBl) -> Result<OpResult, ShmemError> {
        let meta = self.store.meta(bl)?;
        let home = meta.home_stack;
        let len = meta.len;
        let t = self.noc.broadcast(home, len, self.clock);
        self.clock = t.done;
        let stacks = self.store.stack_count();
        for s in 0..stacks {
            self.store.mark_cached(bl, s)?;
        }
        self.stats.remote_ops += (stacks - 1) as u64;
        self.stats.inter_stack_bytes += len * (stacks as u64 - 1);
        Ok(OpResult {
            latency: (t.done - t.start) as f64 / self.cfg.mesh.clock_hz,
            remote: true,
        })
    }

    /// Latency of touching `len` bytes of a block in its residence
    /// (SPM fixed latency + port serialization, or HBM idle latency +
    /// one channel's worth of bandwidth).
    fn local_access_latency(&self, bl: SharedBl, len: u64) -> Result<f64, ShmemError> {
        let meta = self.store.meta(bl)?;
        let ndp_clock = self.cfg.ndp.clock_hz;
        Ok(match meta.residence {
            BlockResidence::Spm(_) => {
                let cycles = self.cfg.spm.access_latency as f64 + len as f64 / SPM_BYTES_PER_CYCLE;
                cycles / ndp_clock
            }
            BlockResidence::Hbm { .. } => {
                let t = self.cfg.memory.timings;
                let idle = (t.t_rcd + t.t_cas + t.t_burst) as f64 / t.clock_hz;
                idle + len as f64 / t.channel_peak_bw()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(scheme: CommScheme) -> NdftRuntime {
        NdftRuntime::new(&SystemConfig::paper_table3(), scheme)
    }

    #[test]
    fn local_read_is_fast_and_not_remote() {
        let mut r = rt(CommScheme::Hierarchical);
        let bl = r.alloc_shared(8192, 2).unwrap();
        let res = r.read(UnitId { stack: 2, unit: 0 }, bl, 8192).unwrap();
        assert!(!res.remote);
        assert!(res.latency < 1e-6);
        assert_eq!(r.stats().local_ops, 1);
    }

    #[test]
    fn remote_read_crosses_mesh_once_then_filters() {
        let mut r = rt(CommScheme::Hierarchical);
        let bl = r.alloc_shared(4096, 0).unwrap();
        let a = r.read(UnitId { stack: 9, unit: 0 }, bl, 4096).unwrap();
        assert!(a.remote);
        let b = r.read(UnitId { stack: 9, unit: 3 }, bl, 4096).unwrap();
        assert!(!b.remote, "second read must be served from the local copy");
        let s = r.stats();
        assert_eq!(s.remote_ops, 1);
        assert_eq!(s.filtered_ops, 1);
        assert!(s.filter_rate() > 0.49);
    }

    #[test]
    fn flat_scheme_never_filters() {
        let mut r = rt(CommScheme::Flat);
        let bl = r.alloc_shared(4096, 0).unwrap();
        for u in 0..4 {
            let res = r.read(UnitId { stack: 9, unit: u }, bl, 4096).unwrap();
            assert!(res.remote, "flat scheme always crosses");
        }
        assert_eq!(r.stats().remote_ops, 4);
        assert_eq!(r.stats().filtered_ops, 0);
    }

    #[test]
    fn hierarchical_moves_less_inter_stack_data_than_flat() {
        let run = |scheme| {
            let mut r = rt(scheme);
            let bl = r.alloc_shared(65536, 0).unwrap();
            for s in 1..16 {
                for u in 0..8 {
                    r.read(UnitId { stack: s, unit: u }, bl, 65536).unwrap();
                }
            }
            r.stats().inter_stack_bytes
        };
        let hier = run(CommScheme::Hierarchical);
        let flat = run(CommScheme::Flat);
        assert!(
            flat >= 7 * hier,
            "flat {flat} should be ≈8× hierarchical {hier} (8 units per stack)"
        );
    }

    #[test]
    fn write_requires_home_stack() {
        let mut r = rt(CommScheme::Hierarchical);
        let bl = r.alloc_shared(64, 0).unwrap();
        assert!(r.write(UnitId { stack: 0, unit: 1 }, bl, 64).is_ok());
        assert!(r.write(UnitId { stack: 1, unit: 0 }, bl, 64).is_err());
        assert!(r.write_remote(UnitId { stack: 1, unit: 0 }, bl, 64).is_ok());
    }

    #[test]
    fn broadcast_caches_everywhere() {
        let mut r = rt(CommScheme::Hierarchical);
        let bl = r.alloc_shared(1024, 4).unwrap();
        let res = r.broadcast(bl).unwrap();
        assert!(res.remote);
        for s in 0..16 {
            assert!(r.store().is_cached(bl, s).unwrap(), "stack {s}");
        }
        // Follow-up reads are all local.
        let follow = r.read(UnitId { stack: 15, unit: 0 }, bl, 1024).unwrap();
        assert!(!follow.remote);
    }

    #[test]
    fn farther_stacks_pay_more_latency() {
        let mut r = rt(CommScheme::Flat);
        let bl = r.alloc_shared(1 << 16, 0).unwrap();
        let near = r.read(UnitId { stack: 1, unit: 0 }, bl, 1 << 16).unwrap();
        let far = r.read(UnitId { stack: 15, unit: 0 }, bl, 1 << 16).unwrap();
        assert!(far.latency > near.latency);
    }

    #[test]
    fn spm_resident_blocks_are_faster_than_spilled() {
        let mut r = rt(CommScheme::Hierarchical);
        let spm_bl = r.alloc_shared(16 * 1024, 0).unwrap();
        let hbm_bl = r.alloc_shared(8 << 20, 0).unwrap(); // spills
        let a = r
            .read(UnitId { stack: 0, unit: 0 }, spm_bl, 16 * 1024)
            .unwrap();
        let b = r
            .read(UnitId { stack: 0, unit: 0 }, hbm_bl, 16 * 1024)
            .unwrap();
        assert!(
            a.latency < b.latency,
            "SPM {} vs HBM {}",
            a.latency,
            b.latency
        );
    }
}
