//! Parallel pseudopotential-gather simulation through the per-stack
//! communication arbiters.
//!
//! The sequential runtime in [`crate::api`] models one process's timeline.
//! The phase the paper actually optimizes — every NDP unit obtaining every
//! atom's pseudopotential block (Algorithm 1, lines 11–15) — is massively
//! parallel: all 16 stacks fetch concurrently and contend on the mesh.
//! This module replays that phase with per-stack timelines and reports the
//! traffic split and makespan for the hierarchical scheme versus the flat
//! ablation.

use crate::api::CommScheme;
use ndft_sim::config::SystemConfig;
use ndft_sim::noc::{MeshNoc, Topology};
use serde::{Deserialize, Serialize};

/// Outcome of one gather-phase simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatherReport {
    /// Communication scheme simulated.
    pub scheme: CommScheme,
    /// Blocks in the gather (atoms).
    pub blocks: usize,
    /// Bytes that crossed stacks on the mesh.
    pub inter_stack_bytes: u64,
    /// Bytes served within stacks (SPM reads by the units).
    pub intra_stack_bytes: u64,
    /// Mesh messages sent.
    pub messages: u64,
    /// Wall-clock of the phase in seconds (max over stack timelines).
    pub makespan: f64,
}

impl GatherReport {
    /// Inter-stack traffic reduction of `self` relative to `other`.
    pub fn traffic_reduction_vs(&self, other: &GatherReport) -> f64 {
        if other.inter_stack_bytes == 0 {
            return 0.0;
        }
        1.0 - self.inter_stack_bytes as f64 / other.inter_stack_bytes as f64
    }
}

/// Simulates the pseudopotential gather phase: `blocks` shared blocks of
/// `block_bytes` each, homed round-robin across stacks; every NDP unit of
/// every stack needs every block.
///
/// Under [`CommScheme::Hierarchical`], each stack's arbiter fetches each
/// remote block once and the stack's units read the local copy. Under
/// [`CommScheme::Flat`], every unit fetches every remote block itself.
///
/// # Examples
///
/// ```
/// use ndft_shmem::{simulate_block_gather, CommScheme};
/// use ndft_sim::SystemConfig;
///
/// let cfg = SystemConfig::paper_table3();
/// let hier = simulate_block_gather(&cfg, 64, 1 << 20, CommScheme::Hierarchical);
/// let flat = simulate_block_gather(&cfg, 64, 1 << 20, CommScheme::Flat);
/// // The arbiter filters ~8× of the mesh traffic (8 units per stack).
/// assert!(hier.traffic_reduction_vs(&flat) > 0.8);
/// ```
pub fn simulate_block_gather(
    cfg: &SystemConfig,
    blocks: usize,
    block_bytes: u64,
    scheme: CommScheme,
) -> GatherReport {
    simulate_block_gather_on(cfg, blocks, block_bytes, scheme, Topology::Mesh)
}

/// [`simulate_block_gather`] on an explicit interconnect topology (the
/// mesh/torus/ring ablation).
pub fn simulate_block_gather_on(
    cfg: &SystemConfig,
    blocks: usize,
    block_bytes: u64,
    scheme: CommScheme,
    topology: Topology,
) -> GatherReport {
    let stacks = cfg.ndp.stacks;
    let units = cfg.ndp.units_per_stack;
    let mut noc = MeshNoc::with_topology(cfg.mesh, topology);
    let mesh_clock = cfg.mesh.clock_hz;
    // Each arbiter DMA double-buffers: up to `PIPELINE` fetches overlap.
    const PIPELINE: usize = 8;
    const REQ: u64 = 64;

    // Build each stack's fetch list, staggered so concurrent requesters
    // target different homes (the arbiters walk the block space from
    // different offsets — standard all-gather scheduling).
    let mut fetch_lists: Vec<Vec<usize>> = vec![Vec::new(); stacks];
    let mut inter_bytes = 0u64;
    let mut intra_bytes = 0u64;
    for (s, fetch_list) in fetch_lists.iter_mut().enumerate() {
        let offset = (s * blocks).checked_div(stacks).unwrap_or(0);
        for i in 0..blocks {
            let b = (offset + i) % blocks;
            let home = b % stacks;
            if home == s {
                intra_bytes += units as u64 * block_bytes;
                continue;
            }
            let fetches = match scheme {
                CommScheme::Hierarchical => 1,
                CommScheme::Flat => units,
            };
            for _ in 0..fetches {
                fetch_list.push(home);
            }
            intra_bytes += units as u64 * block_bytes;
        }
    }

    // Fair interleaved issue: each round, every stack issues its next
    // fetch, bounded by its pipeline window.
    let mut stack_issue = vec![0u64; stacks];
    let mut in_flight: Vec<Vec<u64>> = vec![Vec::new(); stacks];
    let mut stack_done = vec![0u64; stacks];
    let mut messages = 0u64;
    let rounds = fetch_lists.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        for s in 0..stacks {
            let Some(&home) = fetch_lists[s].get(round) else {
                continue;
            };
            if in_flight[s].len() >= PIPELINE {
                let free_at = in_flight[s].iter().copied().min().unwrap_or(0);
                let idx = in_flight[s]
                    .iter()
                    .position(|&c| c == free_at)
                    .expect("min exists");
                in_flight[s].swap_remove(idx);
                stack_issue[s] = stack_issue[s].max(free_at);
            }
            let req = noc.transfer(s, home, REQ, stack_issue[s]);
            let resp = noc.transfer(home, s, block_bytes, req.done);
            in_flight[s].push(resp.done);
            stack_done[s] = stack_done[s].max(resp.done);
            inter_bytes += REQ + block_bytes;
            messages += 2;
        }
    }
    let makespan_cycles = stack_done.iter().copied().max().unwrap_or(0);

    GatherReport {
        scheme,
        blocks,
        inter_stack_bytes: inter_bytes,
        intra_stack_bytes: intra_bytes,
        messages,
        makespan: makespan_cycles as f64 / mesh_clock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::paper_table3()
    }

    #[test]
    fn hierarchical_traffic_is_one_per_stack_per_block() {
        let r = simulate_block_gather(&cfg(), 16, 1000, CommScheme::Hierarchical);
        // 16 blocks × 15 remote stacks × (1000 + 64).
        assert_eq!(r.inter_stack_bytes, 16 * 15 * 1064);
        assert_eq!(r.messages, 16 * 15 * 2);
    }

    #[test]
    fn flat_traffic_is_units_times_larger() {
        let h = simulate_block_gather(&cfg(), 16, 1000, CommScheme::Hierarchical);
        let f = simulate_block_gather(&cfg(), 16, 1000, CommScheme::Flat);
        assert_eq!(f.inter_stack_bytes, 8 * h.inter_stack_bytes);
        assert!(f.traffic_reduction_vs(&h) < 0.0, "flat is worse");
        assert!((h.traffic_reduction_vs(&f) - 0.875).abs() < 0.01);
    }

    #[test]
    fn makespan_grows_with_scheme_traffic() {
        let h = simulate_block_gather(&cfg(), 64, 1 << 20, CommScheme::Hierarchical);
        let f = simulate_block_gather(&cfg(), 64, 1 << 20, CommScheme::Flat);
        assert!(
            f.makespan > 2.0 * h.makespan,
            "flat {} vs hier {}",
            f.makespan,
            h.makespan
        );
    }

    #[test]
    fn intra_bytes_identical_across_schemes() {
        let h = simulate_block_gather(&cfg(), 32, 4096, CommScheme::Hierarchical);
        let f = simulate_block_gather(&cfg(), 32, 4096, CommScheme::Flat);
        assert_eq!(h.intra_stack_bytes, f.intra_stack_bytes);
    }

    #[test]
    fn zero_blocks_is_empty_report() {
        let r = simulate_block_gather(&cfg(), 0, 4096, CommScheme::Hierarchical);
        assert_eq!(r.inter_stack_bytes, 0);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn makespan_is_positive_and_finite() {
        let r = simulate_block_gather(&cfg(), 128, 1 << 20, CommScheme::Hierarchical);
        assert!(r.makespan > 0.0 && r.makespan.is_finite());
    }

    #[test]
    fn torus_gathers_faster_than_mesh_faster_than_ring() {
        let run = |t: Topology| {
            simulate_block_gather_on(&cfg(), 64, 1 << 20, CommScheme::Hierarchical, t).makespan
        };
        let mesh = run(Topology::Mesh);
        let torus = run(Topology::Torus);
        let ring = run(Topology::Ring);
        assert!(torus < mesh, "torus {torus} vs mesh {mesh}");
        assert!(mesh < ring, "mesh {mesh} vs ring {ring}");
    }

    #[test]
    fn topology_does_not_change_traffic_volume() {
        let mesh =
            simulate_block_gather_on(&cfg(), 32, 4096, CommScheme::Hierarchical, Topology::Mesh);
        let ring =
            simulate_block_gather_on(&cfg(), 32, 4096, CommScheme::Hierarchical, Topology::Ring);
        assert_eq!(mesh.inter_stack_bytes, ring.inter_stack_bytes);
        assert_eq!(mesh.messages, ring.messages);
    }
}
