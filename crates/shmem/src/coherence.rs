//! Version-based coherence for cached shared blocks.
//!
//! The hierarchical scheme of §IV-C caches remote blocks in the local
//! stack's shared memory after the first fetch. That is safe while
//! pseudopotential data is immutable — but each LR-TDDFT iteration
//! *rewrites* pseudopotential-adjacent state (wavefunction-dependent
//! workspaces), and atom movement in ab-initio MD rewrites the blocks
//! themselves between steps. This module supplies the protocol the paper
//! leaves implicit: a single-writer / multiple-reader discipline with
//! per-block versions and write-triggered invalidation of stale copies.
//!
//! The controller is purely logical (who holds what version); traffic
//! and latency are judged by the counters in [`CoherenceStats`], which
//! the ablation harness turns into bytes over the mesh.
//!
//! ## Example
//!
//! ```
//! use ndft_shmem::coherence::CoherenceController;
//! use ndft_shmem::SharedBl;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cc = CoherenceController::new(16);
//! let bl = SharedBl(0);
//! cc.register(bl, 0)?;
//! assert!(cc.read(bl, 5)?.fetched); // cold copy
//! assert!(!cc.read(bl, 5)?.fetched); // now cached…
//! cc.acquire_write(bl, 0)?;
//! cc.release_write(bl, 0)?;
//! assert!(cc.read(bl, 5)?.fetched); // …until a write invalidates it
//! # Ok(())
//! # }
//! ```

use crate::shared_block::SharedBl;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from the coherence controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceError {
    /// The block was never [`register`](CoherenceController::register)ed.
    UnknownBlock,
    /// A second writer tried to acquire a locked block.
    WriteLocked {
        /// Stack currently holding the write lock.
        holder: usize,
    },
    /// A release or write came from a stack that does not hold the lock.
    NotLockHolder,
    /// Stack id out of range.
    BadStack {
        /// Offending stack id.
        stack: usize,
    },
    /// The block is already registered.
    AlreadyRegistered,
}

impl fmt::Display for CoherenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoherenceError::UnknownBlock => write!(f, "block is not registered for coherence"),
            CoherenceError::WriteLocked { holder } => {
                write!(f, "block is write-locked by stack {holder}")
            }
            CoherenceError::NotLockHolder => write!(f, "caller does not hold the write lock"),
            CoherenceError::BadStack { stack } => write!(f, "stack id {stack} out of range"),
            CoherenceError::AlreadyRegistered => write!(f, "block is already registered"),
        }
    }
}

impl Error for CoherenceError {}

/// Outcome of a coherent read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// True when the local copy was cold or stale and a fetch from the
    /// home stack was required.
    pub fetched: bool,
    /// The block version the reader observed.
    pub version: u64,
}

/// Traffic and conflict counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceStats {
    /// Reads served from a valid local copy.
    pub read_hits: u64,
    /// Reads that had to fetch (cold or invalidated copy).
    pub read_fetches: u64,
    /// Copies invalidated by write releases.
    pub invalidations: u64,
    /// Writes committed (lock release with version bump).
    pub writes: u64,
    /// Write-lock acquisitions denied.
    pub write_conflicts: u64,
}

impl CoherenceStats {
    /// Fraction of reads served locally; 0 when no reads happened.
    pub fn read_hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_fetches;
        if total == 0 {
            0.0
        } else {
            self.read_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    version: u64,
    writer: Option<usize>,
    /// Per-stack cached version; `None` = no copy.
    copies: Vec<Option<u64>>,
}

/// Single-writer / multiple-reader controller over shared blocks.
///
/// One controller serves the whole mesh; it tracks, per block, the
/// current version, the write-lock holder, and which stacks cache which
/// version.
#[derive(Debug, Clone)]
pub struct CoherenceController {
    n_stacks: usize,
    entries: HashMap<SharedBl, Entry>,
    stats: CoherenceStats,
}

impl CoherenceController {
    /// A controller for a mesh of `n_stacks` stacks.
    pub fn new(n_stacks: usize) -> Self {
        CoherenceController {
            n_stacks,
            entries: HashMap::new(),
            stats: CoherenceStats::default(),
        }
    }

    /// Number of stacks served.
    pub fn stack_count(&self) -> usize {
        self.n_stacks
    }

    /// Accumulated counters.
    pub fn stats(&self) -> CoherenceStats {
        self.stats
    }

    /// Starts tracking a block homed on `home_stack` (which holds the
    /// only valid copy, at version 0).
    ///
    /// # Errors
    ///
    /// [`CoherenceError::BadStack`] / [`CoherenceError::AlreadyRegistered`].
    pub fn register(&mut self, block: SharedBl, home_stack: usize) -> Result<(), CoherenceError> {
        if home_stack >= self.n_stacks {
            return Err(CoherenceError::BadStack { stack: home_stack });
        }
        if self.entries.contains_key(&block) {
            return Err(CoherenceError::AlreadyRegistered);
        }
        let mut copies = vec![None; self.n_stacks];
        copies[home_stack] = Some(0);
        self.entries.insert(
            block,
            Entry {
                version: 0,
                writer: None,
                copies,
            },
        );
        Ok(())
    }

    /// Current version of a block.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::UnknownBlock`].
    pub fn version(&self, block: SharedBl) -> Result<u64, CoherenceError> {
        Ok(self
            .entries
            .get(&block)
            .ok_or(CoherenceError::UnknownBlock)?
            .version)
    }

    /// Performs a coherent read from `stack`: serves the local copy when
    /// it matches the current version, otherwise fetches and caches it.
    ///
    /// Reads are permitted while a writer holds the lock — they see the
    /// last *committed* version (the writer's updates become visible at
    /// [`release_write`](Self::release_write)).
    ///
    /// # Errors
    ///
    /// [`CoherenceError::UnknownBlock`] / [`CoherenceError::BadStack`].
    pub fn read(&mut self, block: SharedBl, stack: usize) -> Result<ReadOutcome, CoherenceError> {
        if stack >= self.n_stacks {
            return Err(CoherenceError::BadStack { stack });
        }
        let entry = self
            .entries
            .get_mut(&block)
            .ok_or(CoherenceError::UnknownBlock)?;
        let current = entry.version;
        let fetched = entry.copies[stack] != Some(current);
        if fetched {
            entry.copies[stack] = Some(current);
            self.stats.read_fetches += 1;
        } else {
            self.stats.read_hits += 1;
        }
        Ok(ReadOutcome {
            fetched,
            version: current,
        })
    }

    /// Acquires the (single) write lock for `stack`.
    ///
    /// Re-acquisition by the current holder is idempotent.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::WriteLocked`] when another stack holds the lock,
    /// plus the usual handle/stack errors.
    pub fn acquire_write(&mut self, block: SharedBl, stack: usize) -> Result<(), CoherenceError> {
        if stack >= self.n_stacks {
            return Err(CoherenceError::BadStack { stack });
        }
        let entry = self
            .entries
            .get_mut(&block)
            .ok_or(CoherenceError::UnknownBlock)?;
        match entry.writer {
            Some(holder) if holder != stack => {
                self.stats.write_conflicts += 1;
                Err(CoherenceError::WriteLocked { holder })
            }
            _ => {
                entry.writer = Some(stack);
                Ok(())
            }
        }
    }

    /// Commits the write: bumps the version, invalidates every other
    /// stack's copy, installs the writer's copy, releases the lock.
    /// Returns the number of copies invalidated.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::NotLockHolder`] when `stack` does not hold the
    /// lock, plus the usual handle/stack errors.
    pub fn release_write(&mut self, block: SharedBl, stack: usize) -> Result<u64, CoherenceError> {
        if stack >= self.n_stacks {
            return Err(CoherenceError::BadStack { stack });
        }
        let entry = self
            .entries
            .get_mut(&block)
            .ok_or(CoherenceError::UnknownBlock)?;
        if entry.writer != Some(stack) {
            return Err(CoherenceError::NotLockHolder);
        }
        entry.version += 1;
        let mut invalidated = 0;
        for (s, copy) in entry.copies.iter_mut().enumerate() {
            if s == stack {
                *copy = Some(entry.version);
            } else if copy.is_some() {
                *copy = None;
                invalidated += 1;
            }
        }
        entry.writer = None;
        self.stats.invalidations += invalidated;
        self.stats.writes += 1;
        Ok(invalidated)
    }

    /// Number of stacks currently holding a valid copy.
    ///
    /// # Errors
    ///
    /// [`CoherenceError::UnknownBlock`].
    pub fn valid_copies(&self, block: SharedBl) -> Result<usize, CoherenceError> {
        let entry = self
            .entries
            .get(&block)
            .ok_or(CoherenceError::UnknownBlock)?;
        Ok(entry
            .copies
            .iter()
            .filter(|c| **c == Some(entry.version))
            .count())
    }
}

/// Per-phase traffic summary from [`simulate_update_cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateCycleReport {
    /// Iterations simulated.
    pub iterations: usize,
    /// Blocks per iteration that were rewritten.
    pub blocks_written: usize,
    /// Total fetches across all readers and iterations.
    pub fetches: u64,
    /// Total local hits.
    pub hits: u64,
    /// Fetches an invalidation-free (always-refetch) design would pay.
    pub naive_fetches: u64,
}

impl UpdateCycleReport {
    /// Traffic saved versus refetching every block every iteration.
    pub fn traffic_saving(&self) -> f64 {
        if self.naive_fetches == 0 {
            0.0
        } else {
            1.0 - self.fetches as f64 / self.naive_fetches as f64
        }
    }
}

/// Simulates the pseudopotential update pattern: each iteration, the home
/// stacks rewrite `write_fraction` of the blocks (atoms that moved), then
/// every stack reads every block (the wavefunction-update sweep of
/// Algorithm 1). Version-based invalidation refetches only what changed;
/// the returned report compares that against the refetch-everything
/// baseline.
///
/// # Panics
///
/// Panics if `write_fraction` is outside `[0, 1]`.
pub fn simulate_update_cycle(
    n_stacks: usize,
    n_blocks: usize,
    iterations: usize,
    write_fraction: f64,
) -> UpdateCycleReport {
    assert!(
        (0.0..=1.0).contains(&write_fraction),
        "write fraction must be in [0, 1], got {write_fraction}"
    );
    let mut cc = CoherenceController::new(n_stacks);
    let blocks: Vec<SharedBl> = (0..n_blocks as u64).map(SharedBl).collect();
    for (i, &bl) in blocks.iter().enumerate() {
        cc.register(bl, i % n_stacks)
            .expect("registration is valid");
    }
    let writes_per_iter = (n_blocks as f64 * write_fraction).round() as usize;
    for iter in 0..iterations {
        // Write phase: a deterministic rotating subset of blocks changes.
        for w in 0..writes_per_iter {
            let idx = (iter * writes_per_iter + w) % n_blocks;
            let home = idx % n_stacks;
            cc.acquire_write(blocks[idx], home)
                .expect("home can always lock");
            cc.release_write(blocks[idx], home)
                .expect("home holds the lock");
        }
        // Read phase: every stack sweeps every block.
        for stack in 0..n_stacks {
            for &bl in &blocks {
                cc.read(bl, stack).expect("read is valid");
            }
        }
    }
    let stats = cc.stats();
    UpdateCycleReport {
        iterations,
        blocks_written: writes_per_iter,
        fetches: stats.read_fetches,
        hits: stats.read_hits,
        naive_fetches: (n_stacks * n_blocks * iterations) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> CoherenceController {
        let mut cc = CoherenceController::new(4);
        cc.register(SharedBl(1), 0).unwrap();
        cc
    }

    #[test]
    fn cold_read_fetches_then_hits() {
        let mut cc = controller();
        let first = cc.read(SharedBl(1), 2).unwrap();
        assert!(first.fetched);
        let second = cc.read(SharedBl(1), 2).unwrap();
        assert!(!second.fetched);
        assert_eq!(cc.stats().read_fetches, 1);
        assert_eq!(cc.stats().read_hits, 1);
    }

    #[test]
    fn home_stack_reads_hit_immediately() {
        let mut cc = controller();
        assert!(!cc.read(SharedBl(1), 0).unwrap().fetched);
    }

    #[test]
    fn write_invalidates_all_other_copies() {
        let mut cc = controller();
        for stack in 1..4 {
            let _ = cc.read(SharedBl(1), stack).unwrap();
        }
        assert_eq!(cc.valid_copies(SharedBl(1)).unwrap(), 4);
        cc.acquire_write(SharedBl(1), 0).unwrap();
        let invalidated = cc.release_write(SharedBl(1), 0).unwrap();
        assert_eq!(invalidated, 3);
        assert_eq!(cc.valid_copies(SharedBl(1)).unwrap(), 1);
        // Readers refetch the new version exactly once.
        let r = cc.read(SharedBl(1), 2).unwrap();
        assert!(r.fetched);
        assert_eq!(r.version, 1);
    }

    #[test]
    fn single_writer_is_enforced() {
        let mut cc = controller();
        cc.acquire_write(SharedBl(1), 0).unwrap();
        // Idempotent for the holder…
        cc.acquire_write(SharedBl(1), 0).unwrap();
        // …denied for everyone else.
        assert_eq!(
            cc.acquire_write(SharedBl(1), 3),
            Err(CoherenceError::WriteLocked { holder: 0 })
        );
        assert_eq!(cc.stats().write_conflicts, 1);
        // Release by a non-holder is rejected.
        assert_eq!(
            cc.release_write(SharedBl(1), 3),
            Err(CoherenceError::NotLockHolder)
        );
        cc.release_write(SharedBl(1), 0).unwrap();
        // Lock is free again.
        cc.acquire_write(SharedBl(1), 3).unwrap();
    }

    #[test]
    fn reads_see_last_committed_version_during_write() {
        let mut cc = controller();
        let _ = cc.read(SharedBl(1), 2).unwrap();
        cc.acquire_write(SharedBl(1), 0).unwrap();
        // The write is not committed yet: readers still hit version 0.
        let r = cc.read(SharedBl(1), 2).unwrap();
        assert!(!r.fetched);
        assert_eq!(r.version, 0);
        cc.release_write(SharedBl(1), 0).unwrap();
        assert_eq!(cc.read(SharedBl(1), 2).unwrap().version, 1);
    }

    #[test]
    fn versions_are_monotonic() {
        let mut cc = controller();
        for expected in 1..=5u64 {
            cc.acquire_write(SharedBl(1), 1).unwrap();
            cc.release_write(SharedBl(1), 1).unwrap();
            assert_eq!(cc.version(SharedBl(1)).unwrap(), expected);
        }
        assert_eq!(cc.stats().writes, 5);
    }

    #[test]
    fn unknown_and_bad_ids_are_rejected() {
        let mut cc = controller();
        assert_eq!(cc.read(SharedBl(99), 0), Err(CoherenceError::UnknownBlock));
        assert_eq!(
            cc.read(SharedBl(1), 9),
            Err(CoherenceError::BadStack { stack: 9 })
        );
        assert_eq!(
            cc.register(SharedBl(1), 0),
            Err(CoherenceError::AlreadyRegistered)
        );
        assert_eq!(
            cc.register(SharedBl(2), 17),
            Err(CoherenceError::BadStack { stack: 17 })
        );
    }

    #[test]
    fn stats_account_every_read() {
        let mut cc = controller();
        let mut reads = 0;
        for stack in 0..4 {
            for _ in 0..3 {
                let _ = cc.read(SharedBl(1), stack).unwrap();
                reads += 1;
            }
        }
        let s = cc.stats();
        assert_eq!(s.read_hits + s.read_fetches, reads);
        assert!(s.read_hit_rate() > 0.5);
    }

    #[test]
    fn update_cycle_read_mostly_saves_most_traffic() {
        // 5 % of blocks rewritten per iteration (MD-like): the protocol
        // should avoid ~90 % of the refetch-everything traffic.
        let report = simulate_update_cycle(16, 200, 10, 0.05);
        assert!(
            report.traffic_saving() > 0.75,
            "saving {}",
            report.traffic_saving()
        );
        assert_eq!(report.fetches + report.hits, 16 * 200 * 10);
    }

    #[test]
    fn update_cycle_write_heavy_saves_nothing() {
        // Everything rewritten every iteration ⇒ every read refetches.
        let report = simulate_update_cycle(4, 50, 5, 1.0);
        assert!(
            report.traffic_saving() < 0.30,
            "saving {}",
            report.traffic_saving()
        );
    }

    #[test]
    fn update_cycle_readonly_fetches_once_per_stack() {
        let report = simulate_update_cycle(8, 100, 5, 0.0);
        // Cold fetches only: one per (stack, block), minus the home hits.
        assert!(report.fetches <= 8 * 100);
        assert!(report.traffic_saving() > 0.75);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            CoherenceError::UnknownBlock,
            CoherenceError::WriteLocked { holder: 2 },
            CoherenceError::NotLockHolder,
            CoherenceError::BadStack { stack: 7 },
            CoherenceError::AlreadyRegistered,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
