//! Table I reproduction: pseudopotential memory footprints.
//!
//! Composes the sizing model of `ndft-dft::pseudo` with the process
//! topologies of the three platforms:
//!
//! * **CPU**: 8 processes (one per core of the Table III host CPU), full
//!   per-process replication.
//! * **NDP (baseline)**: one process per stack (16), full replication plus
//!   a staging/double-buffering overhead for marshalling blocks into
//!   unit-local DRAM.
//! * **NDFT**: the shared-block layout — one spatially-partitioned copy
//!   per stack (with halos) plus per-process index tables.
//!
//! The CPU cells are calibrated to Table I exactly (DESIGN.md §4.3); the
//! NDP and NDFT rows *follow* from the topology model, reproducing the
//! paper's +140 %/+156 % inflation and the −57.8 % NDFT reduction.

use ndft_dft::pseudo::{footprint_bytes, PseudoLayout};
use ndft_dft::SiliconSystem;
use serde::{Deserialize, Serialize};

/// Bytes per GiB.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// The platforms whose footprints Table I compares (plus NDFT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// Standalone CPU execution (8 processes).
    Cpu,
    /// NDP execution with the traditional replicated layout.
    NdpReplicated,
    /// NDP execution with NDFT's shared-block layout.
    NdftSharedBlock,
}

impl Platform {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::Cpu => "CPU",
            Platform::NdpReplicated => "NDP",
            Platform::NdftSharedBlock => "NDFT",
        }
    }

    /// The pseudopotential layout this platform uses.
    pub fn layout(&self) -> PseudoLayout {
        match self {
            Platform::Cpu => PseudoLayout::Replicated {
                processes: 8,
                staging_overhead_ppm: 0,
            },
            Platform::NdpReplicated => {
                // One process per stack; blocks staged into unit-local DRAM
                // with ~38% double-buffering overhead.
                PseudoLayout::Replicated {
                    processes: 16,
                    staging_overhead_ppm: 380,
                }
            }
            Platform::NdftSharedBlock => PseudoLayout::SharedBlock {
                domains: 16,
                processes: 256,
                halo_angstrom: 4.9,
            },
        }
    }
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintRow {
    /// Platform.
    pub platform: Platform,
    /// Physical system label (e.g. `Si_64`).
    pub system: String,
    /// Pseudopotential footprint in bytes.
    pub bytes: u64,
    /// Footprint as a fraction of the 64 GB system memory.
    pub fraction: f64,
}

impl FootprintRow {
    /// Footprint in GiB.
    pub fn gib(&self) -> f64 {
        self.bytes as f64 / GIB
    }
}

/// System memory capacity of both evaluation platforms (64 GB).
pub const SYSTEM_MEMORY_BYTES: u64 = 64 * 1024 * 1024 * 1024;

/// Computes one footprint row.
pub fn footprint_row(system: &SiliconSystem, platform: Platform) -> FootprintRow {
    let bytes = footprint_bytes(system, platform.layout());
    FootprintRow {
        platform,
        system: system.label(),
        bytes,
        fraction: bytes as f64 / SYSTEM_MEMORY_BYTES as f64,
    }
}

/// The full Table I reproduction (plus the NDFT rows discussed in §VI-A).
pub fn table1_rows() -> Vec<FootprintRow> {
    let small = SiliconSystem::small();
    let large = SiliconSystem::large();
    let mut rows = Vec::new();
    for sys in [&small, &large] {
        for p in [
            Platform::NdpReplicated,
            Platform::Cpu,
            Platform::NdftSharedBlock,
        ] {
            rows.push(footprint_row(sys, p));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(atoms: usize, p: Platform) -> FootprintRow {
        footprint_row(&SiliconSystem::new(atoms).unwrap(), p)
    }

    #[test]
    fn cpu_cells_match_table1() {
        // Table I: CPU small 1.84 GB (2.88 %), CPU large 13.8 GB (21.56 %).
        let small = row(64, Platform::Cpu);
        let large = row(1024, Platform::Cpu);
        assert!(
            (small.gib() - 1.84).abs() < 0.02,
            "CPU small {}",
            small.gib()
        );
        assert!(
            (large.gib() - 13.8).abs() < 0.1,
            "CPU large {}",
            large.gib()
        );
        assert!((small.fraction - 0.0288).abs() < 0.001);
        assert!((large.fraction - 0.2156).abs() < 0.005);
    }

    #[test]
    fn ndp_inflation_matches_paper_shape() {
        // Paper: NDP is +140.2 % (small) and +155.7 % (large) over CPU.
        let ratio_small = row(64, Platform::NdpReplicated).gib() / row(64, Platform::Cpu).gib();
        let ratio_large = row(1024, Platform::NdpReplicated).gib() / row(1024, Platform::Cpu).gib();
        assert!(
            ratio_small > 2.0 && ratio_small < 3.0,
            "small ratio {ratio_small}"
        );
        assert!(
            ratio_large > 2.2 && ratio_large < 3.1,
            "large ratio {ratio_large}"
        );
        assert!(
            ratio_large > ratio_small,
            "inflation grows with system size"
        );
    }

    #[test]
    fn ndp_large_system_risks_oom() {
        // Paper: 55.15 % of system memory for pseudopotentials alone.
        let r = row(1024, Platform::NdpReplicated);
        assert!(r.fraction > 0.5, "NDP large fraction {}", r.fraction);
        // Si_2048 under the replicated layout exceeds memory outright.
        let r2k = row(2048, Platform::NdpReplicated);
        assert!(
            r2k.fraction > 1.0,
            "Si_2048 replicated must OOM: {}",
            r2k.fraction
        );
    }

    #[test]
    fn ndft_reduction_matches_paper_shape() {
        // Paper §VI-A: NDFT reduces the large-system footprint by 57.8 %
        // versus NDP, landing at ≈1.08× the CPU footprint.
        let ndp = row(1024, Platform::NdpReplicated);
        let ndft = row(1024, Platform::NdftSharedBlock);
        let cpu = row(1024, Platform::Cpu);
        let reduction = 1.0 - ndft.gib() / ndp.gib();
        let vs_cpu = ndft.gib() / cpu.gib();
        assert!(reduction > 0.5 && reduction < 0.68, "reduction {reduction}");
        assert!(vs_cpu > 0.9 && vs_cpu < 1.25, "vs CPU {vs_cpu}");
    }

    #[test]
    fn ndft_solves_the_si2048_oom() {
        let r = row(2048, Platform::NdftSharedBlock);
        assert!(r.fraction < 1.0, "NDFT Si_2048 fits: {}", r.fraction);
    }

    #[test]
    fn table_has_six_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows
            .iter()
            .any(|r| r.system == "Si_64" && r.platform == Platform::Cpu));
        assert!(rows
            .iter()
            .any(|r| r.system == "Si_1024" && r.platform == Platform::NdftSharedBlock));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Platform::Cpu.label(), "CPU");
        assert_eq!(Platform::NdpReplicated.label(), "NDP");
        assert_eq!(Platform::NdftSharedBlock.label(), "NDFT");
    }
}
