//! # ndft-shmem
//!
//! The paper's hardware/software co-design for pseudopotential data
//! (§IV-B, §IV-C):
//!
//! * [`shared_block`] — the `sharedBL` store: one copy per stack,
//!   SPM-resident with HBM spill, plus per-process handles.
//! * [`api`] — the Table II programming interface (`NDFT_Alloc_Shared`,
//!   `NDFT_Read`, `NDFT_Write`, `NDFT_Read_Remote`, `NDFT_Write_Remote`,
//!   `NDFT_Broadcast`) with latency accounting over the mesh NoC.
//! * [`arbiter`] — parallel gather simulation through the per-stack comm
//!   arbiters; quantifies the hierarchical scheme's traffic filtering.
//! * [`footprint`] — the Table I memory-footprint reproduction.
//!
//! ## Example
//!
//! ```
//! use ndft_shmem::{CommScheme, NdftRuntime, UnitId};
//! use ndft_sim::SystemConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rt = NdftRuntime::new(&SystemConfig::paper_table3(), CommScheme::Hierarchical);
//! let block = rt.alloc_shared(1 << 20, 0)?;
//! let res = rt.read(UnitId { stack: 5, unit: 0 }, block, 1 << 20)?;
//! assert!(res.remote); // first touch crosses the mesh…
//! let res2 = rt.read(UnitId { stack: 5, unit: 1 }, block, 1 << 20)?;
//! assert!(!res2.remote); // …then the arbiter serves it locally
//! # Ok(())
//! # }
//! ```

pub mod alltoall;
pub mod api;
pub mod arbiter;
pub mod coherence;
pub mod footprint;
pub mod shared_block;

pub use alltoall::{simulate_alltoall, AlltoallReport};
pub use api::{CommScheme, NdftRuntime, OpResult, RuntimeStats, UnitId};
pub use arbiter::{simulate_block_gather, simulate_block_gather_on, GatherReport};
pub use coherence::{
    simulate_update_cycle, CoherenceController, CoherenceError, CoherenceStats, ReadOutcome,
    UpdateCycleReport,
};
pub use footprint::{footprint_row, table1_rows, FootprintRow, Platform};
pub use shared_block::{BlockMeta, BlockResidence, SharedBl, SharedBlockStore, ShmemError};
