//! The shared-block store (`sharedBL` of the paper's §IV-B).
//!
//! Pseudopotential data is reorganized into *shared blocks*: one copy per
//! stack, preferentially resident in the logic-layer scratchpad (SPM) and
//! spilling to the stack's HBM partition when the SPM is full. Every
//! process holds only an index (a [`SharedBl`] handle) instead of a
//! private copy — the core of the paper's memory-footprint fix.

use ndft_sim::config::SystemConfig;
use ndft_sim::spm::{Scratchpad, SpmHandle};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a shared block (the paper's `sharedBL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SharedBl(pub u64);

/// Where a block's bytes physically live within its home stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockResidence {
    /// In the logic-layer scratchpad (fast fixed-latency access).
    Spm(SpmHandle),
    /// Spilled to the stack's HBM partition.
    Hbm {
        /// Byte offset inside the stack's shared-heap region.
        offset: u64,
    },
}

/// Metadata of one shared block.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Home stack id.
    pub home_stack: usize,
    /// Payload size in bytes.
    pub len: u64,
    /// Physical residence in the home stack.
    pub residence: BlockResidence,
    /// Which stacks hold a fetched copy (the hierarchical scheme caches
    /// remote blocks in the local shared memory after the first fetch).
    pub cached_in: Vec<bool>,
}

/// Errors from the shared-block store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShmemError {
    /// Stack id out of range.
    BadStack {
        /// Offending stack id.
        stack: usize,
    },
    /// Unknown block handle.
    UnknownBlock,
    /// The stack's shared heap (SPM + HBM spill budget) is exhausted.
    OutOfSharedMemory {
        /// Home stack.
        stack: usize,
        /// Requested bytes.
        requested: u64,
    },
}

impl fmt::Display for ShmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShmemError::BadStack { stack } => write!(f, "stack id {stack} out of range"),
            ShmemError::UnknownBlock => write!(f, "unknown shared block handle"),
            ShmemError::OutOfSharedMemory { stack, requested } => {
                write!(
                    f,
                    "stack {stack} shared heap exhausted ({requested} B requested)"
                )
            }
        }
    }
}

impl Error for ShmemError {}

/// Per-stack shared-memory state: the SPM plus an HBM spill heap.
#[derive(Debug)]
pub struct StackHeap {
    /// Logic-layer scratchpad.
    pub spm: Scratchpad,
    /// Bytes spilled into the stack's HBM partition.
    pub hbm_used: u64,
    /// HBM spill budget (the stack's DRAM partition share reserved for
    /// shared pseudopotential data).
    pub hbm_budget: u64,
}

/// The distributed shared-block store across all stacks.
///
/// # Examples
///
/// ```
/// use ndft_shmem::SharedBlockStore;
/// use ndft_sim::SystemConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = SharedBlockStore::new(&SystemConfig::paper_table3());
/// let bl = store.alloc(4096, 3)?;
/// assert_eq!(store.meta(bl)?.home_stack, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SharedBlockStore {
    stacks: Vec<StackHeap>,
    blocks: HashMap<SharedBl, BlockMeta>,
    next_id: u64,
}

impl SharedBlockStore {
    /// Creates an empty store sized from the system configuration. Each
    /// stack reserves 1/8 of its DRAM partition as HBM spill budget.
    pub fn new(cfg: &SystemConfig) -> Self {
        let stack_dram = (cfg.ndp.units_per_stack * cfg.ndp.dram_per_unit) as u64;
        let stacks = (0..cfg.ndp.stacks)
            .map(|_| StackHeap {
                spm: Scratchpad::from_config(&cfg.spm),
                hbm_used: 0,
                hbm_budget: stack_dram / 8,
            })
            .collect();
        SharedBlockStore {
            stacks,
            blocks: HashMap::new(),
            next_id: 0,
        }
    }

    /// Number of stacks.
    pub fn stack_count(&self) -> usize {
        self.stacks.len()
    }

    /// Immutable view of one stack's heap.
    ///
    /// # Panics
    ///
    /// Panics if `stack` is out of range.
    pub fn stack(&self, stack: usize) -> &StackHeap {
        &self.stacks[stack]
    }

    /// Allocates a shared block of `len` bytes homed on `stack`
    /// (`NDFT_Alloc_Shared`). Tries the SPM first, then the HBM spill
    /// heap.
    ///
    /// # Errors
    ///
    /// [`ShmemError::BadStack`] for an invalid stack,
    /// [`ShmemError::OutOfSharedMemory`] when both SPM and spill budget
    /// are exhausted.
    pub fn alloc(&mut self, len: u64, stack: usize) -> Result<SharedBl, ShmemError> {
        if stack >= self.stacks.len() {
            return Err(ShmemError::BadStack { stack });
        }
        let n_stacks = self.stacks.len();
        let heap = &mut self.stacks[stack];
        let residence = match heap.spm.alloc(len as usize) {
            Ok(h) => BlockResidence::Spm(h),
            Err(_) => {
                if heap.hbm_used + len > heap.hbm_budget {
                    return Err(ShmemError::OutOfSharedMemory {
                        stack,
                        requested: len,
                    });
                }
                let offset = heap.hbm_used;
                heap.hbm_used += len;
                BlockResidence::Hbm { offset }
            }
        };
        let id = SharedBl(self.next_id);
        self.next_id += 1;
        let mut cached_in = vec![false; n_stacks];
        cached_in[stack] = true;
        self.blocks.insert(
            id,
            BlockMeta {
                home_stack: stack,
                len,
                residence,
                cached_in,
            },
        );
        Ok(id)
    }

    /// Frees a shared block.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] if the handle is not live.
    pub fn free(&mut self, id: SharedBl) -> Result<(), ShmemError> {
        let meta = self.blocks.remove(&id).ok_or(ShmemError::UnknownBlock)?;
        let heap = &mut self.stacks[meta.home_stack];
        match meta.residence {
            BlockResidence::Spm(h) => {
                heap.spm.free(h).map_err(|_| ShmemError::UnknownBlock)?;
            }
            BlockResidence::Hbm { .. } => {
                // Bump-style spill heap: bytes are reclaimed lazily.
                heap.hbm_used = heap.hbm_used.saturating_sub(meta.len);
            }
        }
        Ok(())
    }

    /// Looks up a block's metadata.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] if the handle is not live.
    pub fn meta(&self, id: SharedBl) -> Result<&BlockMeta, ShmemError> {
        self.blocks.get(&id).ok_or(ShmemError::UnknownBlock)
    }

    /// Marks a block as cached in `stack` (hierarchical scheme: the local
    /// arbiter fetched it once and keeps it in local shared memory).
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] / [`ShmemError::BadStack`].
    pub fn mark_cached(&mut self, id: SharedBl, stack: usize) -> Result<(), ShmemError> {
        let n = self.stacks.len();
        let meta = self.blocks.get_mut(&id).ok_or(ShmemError::UnknownBlock)?;
        if stack >= n {
            return Err(ShmemError::BadStack { stack });
        }
        meta.cached_in[stack] = true;
        Ok(())
    }

    /// True when `stack` holds a local copy of the block.
    ///
    /// # Errors
    ///
    /// [`ShmemError::UnknownBlock`] if the handle is not live.
    pub fn is_cached(&self, id: SharedBl, stack: usize) -> Result<bool, ShmemError> {
        Ok(*self
            .meta(id)?
            .cached_in
            .get(stack)
            .ok_or(ShmemError::BadStack { stack })?)
    }

    /// Total shared bytes resident on one stack (SPM + HBM spill).
    ///
    /// # Panics
    ///
    /// Panics if `stack` is out of range.
    pub fn stack_bytes(&self, stack: usize) -> u64 {
        let heap = &self.stacks[stack];
        heap.spm.used() as u64 + heap.hbm_used
    }

    /// Number of live blocks.
    pub fn live_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SharedBlockStore {
        SharedBlockStore::new(&SystemConfig::paper_table3())
    }

    #[test]
    fn small_blocks_go_to_spm() {
        let mut s = store();
        let bl = s.alloc(1024, 0).unwrap();
        assert!(matches!(
            s.meta(bl).unwrap().residence,
            BlockResidence::Spm(_)
        ));
        assert_eq!(s.stack_bytes(0), 1024);
    }

    #[test]
    fn large_blocks_spill_to_hbm() {
        let mut s = store();
        // 1 MiB exceeds the 256 KiB per-stack SPM.
        let bl = s.alloc(1 << 20, 0).unwrap();
        assert!(matches!(
            s.meta(bl).unwrap().residence,
            BlockResidence::Hbm { .. }
        ));
    }

    #[test]
    fn spill_budget_is_finite() {
        let mut s = store();
        // Budget = (8 units × 512 MiB)/8 = 512 MiB per stack.
        let budget = s.stack(0).hbm_budget;
        let bl = s.alloc(budget, 0).unwrap();
        assert!(matches!(
            s.meta(bl).unwrap().residence,
            BlockResidence::Hbm { .. }
        ));
        match s.alloc(1 << 20, 0) {
            Err(ShmemError::OutOfSharedMemory { stack: 0, .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn free_releases_space() {
        let mut s = store();
        let bl = s.alloc(2048, 1).unwrap();
        assert_eq!(s.stack_bytes(1), 2048);
        s.free(bl).unwrap();
        assert_eq!(s.stack_bytes(1), 0);
        assert_eq!(s.free(bl), Err(ShmemError::UnknownBlock));
    }

    #[test]
    fn home_stack_is_cached_initially() {
        let mut s = store();
        let bl = s.alloc(64, 5).unwrap();
        assert!(s.is_cached(bl, 5).unwrap());
        assert!(!s.is_cached(bl, 4).unwrap());
        s.mark_cached(bl, 4).unwrap();
        assert!(s.is_cached(bl, 4).unwrap());
    }

    #[test]
    fn bad_stack_rejected() {
        let mut s = store();
        assert_eq!(s.alloc(64, 99), Err(ShmemError::BadStack { stack: 99 }));
    }

    #[test]
    fn blocks_on_different_stacks_are_independent() {
        let mut s = store();
        let a = s.alloc(1000, 0).unwrap();
        let b = s.alloc(2000, 1).unwrap();
        assert_eq!(s.stack_bytes(0), 1000);
        assert_eq!(s.stack_bytes(1), 2000);
        assert_eq!(s.live_blocks(), 2);
        s.free(a).unwrap();
        s.free(b).unwrap();
        assert_eq!(s.live_blocks(), 0);
    }

    #[test]
    fn error_messages_are_nonempty() {
        assert!(!format!("{}", ShmemError::UnknownBlock).is_empty());
        assert!(format!("{}", ShmemError::BadStack { stack: 3 }).contains('3'));
    }
}
