//! Property-based tests of the shared-memory runtime invariants.

use ndft_shmem::{CommScheme, NdftRuntime, SharedBlockStore, UnitId};
use ndft_sim::SystemConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_accounting_balances(
        sizes in prop::collection::vec(1u64..(1 << 20), 1..64),
        stacks in prop::collection::vec(0usize..16, 1..64),
    ) {
        let mut store = SharedBlockStore::new(&SystemConfig::paper_table3());
        let mut live = Vec::new();
        let mut per_stack = [0u64; 16];
        for (len, stack) in sizes.iter().zip(stacks.iter().cycle()) {
            if let Ok(bl) = store.alloc(*len, *stack) {
                live.push((bl, *len, *stack));
                per_stack[*stack] += *len;
            }
        }
        for (s, &expect) in per_stack.iter().enumerate() {
            prop_assert_eq!(store.stack_bytes(s), expect, "stack {}", s);
        }
        // Free everything; all stacks drain to zero.
        for (bl, _, _) in live {
            store.free(bl).unwrap();
        }
        for s in 0..16 {
            prop_assert_eq!(store.stack_bytes(s), 0u64);
        }
        prop_assert_eq!(store.live_blocks(), 0);
    }

    #[test]
    fn hierarchical_remote_ops_bounded_by_blocks_times_stacks(
        n_blocks in 1usize..24,
        readers in prop::collection::vec((0usize..16, 0usize..8), 1..128),
    ) {
        let cfg = SystemConfig::paper_table3();
        let mut rt = NdftRuntime::new(&cfg, CommScheme::Hierarchical);
        let blocks: Vec<_> = (0..n_blocks)
            .map(|i| rt.alloc_shared(4096, i % 16).unwrap())
            .collect();
        for &(stack, unit) in &readers {
            for &bl in &blocks {
                rt.read(UnitId { stack, unit }, bl, 4096).unwrap();
            }
        }
        // The arbiter caches: at most one mesh fetch per (block, stack).
        let stats = rt.stats();
        prop_assert!(stats.remote_ops <= (n_blocks * 15) as u64);
        prop_assert_eq!(
            stats.local_ops + stats.remote_ops + stats.filtered_ops,
            (readers.len() * n_blocks) as u64
        );
    }

    #[test]
    fn flat_scheme_always_pays_per_reader(
        readers in prop::collection::vec(1usize..16, 1..32),
    ) {
        let cfg = SystemConfig::paper_table3();
        let mut rt = NdftRuntime::new(&cfg, CommScheme::Flat);
        let bl = rt.alloc_shared(1024, 0).unwrap();
        let mut remote = 0u64;
        for &stack in &readers {
            let r = rt.read(UnitId { stack, unit: 0 }, bl, 1024).unwrap();
            prop_assert!(r.remote);
            remote += 1;
        }
        prop_assert_eq!(rt.stats().remote_ops, remote);
        prop_assert_eq!(rt.stats().filtered_ops, 0);
    }

    #[test]
    fn latencies_are_positive_and_monotone_in_size(
        len_small in 64u64..4096,
        factor in 2u64..16,
    ) {
        let cfg = SystemConfig::paper_table3();
        let mut rt = NdftRuntime::new(&cfg, CommScheme::Hierarchical);
        let a = rt.alloc_shared(len_small * factor, 0).unwrap();
        let small = rt.read(UnitId { stack: 0, unit: 0 }, a, len_small).unwrap();
        let large = rt.read(UnitId { stack: 0, unit: 0 }, a, len_small * factor).unwrap();
        prop_assert!(small.latency > 0.0);
        prop_assert!(large.latency >= small.latency);
    }
}

// --- Coherence-protocol invariants. ---

mod coherence_props {
    use ndft_shmem::coherence::CoherenceController;
    use ndft_shmem::SharedBl;
    use proptest::prelude::*;

    /// A random schedule of reads and (acquire, release) write pairs.
    #[derive(Debug, Clone)]
    enum Op {
        Read { stack: usize },
        Write { stack: usize },
    }

    fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
        prop::collection::vec(
            prop_oneof![
                (0usize..8).prop_map(|stack| Op::Read { stack }),
                (0usize..8).prop_map(|stack| Op::Write { stack }),
            ],
            1..200,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn protocol_invariants_hold_under_random_schedules(ops in arb_ops()) {
            let mut cc = CoherenceController::new(8);
            let bl = SharedBl(7);
            cc.register(bl, 0).unwrap();
            let mut reads = 0u64;
            let mut version = 0u64;
            for op in &ops {
                match *op {
                    Op::Read { stack } => {
                        let out = cc.read(bl, stack).unwrap();
                        reads += 1;
                        // A read always observes the current version.
                        prop_assert_eq!(out.version, version);
                        // Immediately after a read, the reader's copy is valid.
                        prop_assert!(!cc.read(bl, stack).unwrap().fetched);
                        reads += 1;
                    }
                    Op::Write { stack } => {
                        cc.acquire_write(bl, stack).unwrap();
                        cc.release_write(bl, stack).unwrap();
                        version += 1;
                        // After a commit only the writer holds a valid copy.
                        prop_assert_eq!(cc.valid_copies(bl).unwrap(), 1);
                    }
                }
                // Version is monotone and matches our shadow counter.
                prop_assert_eq!(cc.version(bl).unwrap(), version);
            }
            let stats = cc.stats();
            prop_assert_eq!(stats.read_hits + stats.read_fetches, reads);
            prop_assert_eq!(stats.writes, version);
        }

        #[test]
        fn valid_copies_grow_only_by_reads(
            readers in prop::collection::vec(0usize..8, 0..32)
        ) {
            let mut cc = CoherenceController::new(8);
            let bl = SharedBl(1);
            cc.register(bl, 3).unwrap();
            let mut seen = std::collections::HashSet::from([3usize]);
            for &stack in &readers {
                let _ = cc.read(bl, stack).unwrap();
                seen.insert(stack);
                prop_assert_eq!(cc.valid_copies(bl).unwrap(), seen.len());
            }
        }
    }
}
