//! Set-associative cache model with LRU replacement.
//!
//! Write-back, write-allocate, inclusive-enough for bandwidth studies:
//! the hierarchy runner feeds an address stream through L1→L2→L3 and
//! emits the resulting DRAM request stream plus per-level hit statistics.

use crate::config::CacheConfig;

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; optionally a dirty victim was evicted.
    Miss {
        /// Address of the evicted dirty line, if any (needs a writeback).
        writeback: Option<u64>,
    },
}

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses presented to this level.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero when unused.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (bigger = more recent).
    lru: u64,
}

/// One set-associative, write-back, write-allocate cache.
///
/// # Examples
///
/// ```
/// use ndft_sim::cache::{Cache, CacheOutcome};
/// use ndft_sim::config::CacheConfig;
///
/// let cfg = CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64, hit_latency: 4 };
/// let mut c = Cache::new(cfg);
/// assert!(matches!(c.access(0x40, false), CacheOutcome::Miss { .. }));
/// assert!(matches!(c.access(0x40, false), CacheOutcome::Hit));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr / self.cfg.line_bytes as u64;
        (
            (line_addr % self.sets as u64) as usize,
            line_addr / self.sets as u64,
        )
    }

    /// Installs a line without counting it as a demand access (the path a
    /// prefetch fill takes). Returns the dirty victim's address, if any.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.clock += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.clock;
            line.dirty |= dirty;
            return None;
        }
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        let line = &mut ways[victim];
        let writeback = if line.valid && line.dirty {
            let victim_line_addr = line.tag * self.sets as u64 + set as u64;
            Some(victim_line_addr * self.cfg.line_bytes as u64)
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty,
            lru: self.clock,
        };
        writeback
    }

    /// Presents one access; allocates on miss; returns the outcome.
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        // Hit?
        for line in ways.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.clock;
                line.dirty |= is_write;
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        // Miss: pick victim (invalid first, else LRU).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        let line = &mut ways[victim];
        let writeback = if line.valid && line.dirty {
            let victim_line_addr = line.tag * self.sets as u64 + set as u64;
            self.stats.writebacks += 1;
            Some(victim_line_addr * self.cfg.line_bytes as u64)
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.clock,
        };
        CacheOutcome::Miss { writeback }
    }
}

/// A three-level cache hierarchy feeding a memory request stream.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Shared L3 (last level).
    pub l3: Cache,
}

/// Result of pushing one address through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Core cycles spent locating the data (sum of hit latencies walked).
    pub latency: u64,
    /// True when the access had to go to DRAM.
    pub dram_fill: bool,
    /// Dirty line pushed out of the LLC, if any (a DRAM write).
    pub dram_writeback: Option<u64>,
}

impl Hierarchy {
    /// Builds a hierarchy from three geometries.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: CacheConfig) -> Self {
        Hierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            l3: Cache::new(l3),
        }
    }

    /// Resets all levels.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
    }

    /// Presents one demand access and walks it down the levels.
    ///
    /// Victim writebacks are propagated into the next level down; a dirty
    /// LLC victim surfaces as `dram_writeback`.
    pub fn access(&mut self, addr: u64, is_write: bool) -> HierarchyAccess {
        let mut latency = self.l1.cfg.hit_latency;
        match self.l1.access(addr, is_write) {
            CacheOutcome::Hit => {
                return HierarchyAccess {
                    latency,
                    dram_fill: false,
                    dram_writeback: None,
                }
            }
            CacheOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    let _ = self.l2.access(wb, true);
                }
            }
        }
        latency += self.l2.cfg.hit_latency;
        match self.l2.access(addr, false) {
            CacheOutcome::Hit => {
                return HierarchyAccess {
                    latency,
                    dram_fill: false,
                    dram_writeback: None,
                }
            }
            CacheOutcome::Miss { writeback } => {
                if let Some(wb) = writeback {
                    let _ = self.l3.access(wb, true);
                }
            }
        }
        latency += self.l3.cfg.hit_latency;
        match self.l3.access(addr, false) {
            CacheOutcome::Hit => HierarchyAccess {
                latency,
                dram_fill: false,
                dram_writeback: None,
            },
            CacheOutcome::Miss { writeback } => HierarchyAccess {
                latency,
                dram_fill: true,
                dram_writeback: writeback,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::KIB;

    fn small() -> CacheConfig {
        CacheConfig {
            size_bytes: KIB,
            ways: 2,
            line_bytes: 64,
            hit_latency: 4,
        }
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(small());
        assert!(matches!(c.access(128, false), CacheOutcome::Miss { .. }));
        for _ in 0..10 {
            assert_eq!(c.access(128, false), CacheOutcome::Hit);
        }
        assert_eq!(c.stats().hits, 10);
    }

    #[test]
    fn same_line_different_word_hits() {
        let mut c = Cache::new(small());
        let _ = c.access(256, false);
        assert_eq!(c.access(256 + 63, false), CacheOutcome::Hit);
        assert!(matches!(
            c.access(256 + 64, false),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way set: fill both ways, touch the first, insert a third.
        let mut c = Cache::new(small());
        let sets = small().sets() as u64; // 8 sets
        let line = 64u64;
        let a = 0u64;
        let b = a + sets * line; // same set, different tag
        let d = b + sets * line; // same set, third tag
        let _ = c.access(a, false);
        let _ = c.access(b, false);
        let _ = c.access(a, false); // a is now MRU
        let _ = c.access(d, false); // evicts b
        assert_eq!(c.access(a, false), CacheOutcome::Hit);
        assert!(matches!(c.access(b, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = Cache::new(small());
        let sets = small().sets() as u64;
        let line = 64u64;
        let a = 5 * line; // set 5
        let b = a + sets * line;
        let d = b + sets * line;
        let _ = c.access(a, true); // dirty
        let _ = c.access(b, false);
        match c.access(d, false) {
            CacheOutcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb, a),
            other => panic!("expected dirty eviction of {a}, got {other:?}"),
        }
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(small()); // 1 KiB = 16 lines
        let lines = 64u64;
        for rep in 0..4 {
            for i in 0..lines {
                let outcome = c.access(i * 64, false);
                if rep > 0 {
                    // Every access must miss: working set is 4× capacity.
                    assert!(
                        matches!(outcome, CacheOutcome::Miss { .. }),
                        "iter {rep} line {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchy_filters_dram_traffic_for_small_working_set() {
        let mut h = Hierarchy::new(
            CacheConfig {
                size_bytes: KIB,
                ways: 2,
                line_bytes: 64,
                hit_latency: 4,
            },
            CacheConfig {
                size_bytes: 8 * KIB,
                ways: 4,
                line_bytes: 64,
                hit_latency: 12,
            },
            CacheConfig {
                size_bytes: 64 * KIB,
                ways: 8,
                line_bytes: 64,
                hit_latency: 30,
            },
        );
        let mut dram = 0;
        for rep in 0..4 {
            for i in 0..32u64 {
                let acc = h.access(i * 64, false);
                if acc.dram_fill {
                    dram += 1;
                }
                let _ = rep;
            }
        }
        // 32 lines fit in L2: DRAM only sees the 32 cold fills.
        assert_eq!(dram, 32);
    }

    #[test]
    fn hierarchy_latency_accumulates_down_levels() {
        let mut h = Hierarchy::new(small(), small(), small());
        let first = h.access(0, false);
        assert!(first.dram_fill);
        assert_eq!(first.latency, 12); // 4 + 4 + 4
        let second = h.access(0, false);
        assert!(!second.dram_fill);
        assert_eq!(second.latency, 4);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut c = Cache::new(small());
        let _ = c.access(0, false);
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        c.reset();
        assert!(matches!(c.access(0, false), CacheOutcome::Miss { .. }));
        assert_eq!(c.stats().accesses, 1);
    }
}
