//! System configuration types and the paper's Table III preset.
//!
//! Every structural parameter of the simulated CPU–NDP machine lives here:
//! core counts and clocks, cache geometry, DRAM timing presets (HBM2 for
//! the stacks, DDR4 for the CPU baseline), the stack mesh, and the
//! scratchpad sizes used by the shared-memory design.

use serde::{Deserialize, Serialize};

/// Clock frequency in Hz.
pub type Hz = f64;

/// One kibibyte.
pub const KIB: usize = 1024;
/// One mebibyte.
pub const MIB: usize = 1024 * KIB;
/// One gibibyte.
pub const GIB: usize = 1024 * MIB;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access (hit) latency in core cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways) && lines > 0,
            "cache geometry must divide evenly (size {} / line {} / ways {})",
            self.size_bytes,
            self.line_bytes,
            self.ways
        );
        lines / self.ways
    }
}

/// A CPU core complex (the host side of the CPU-NDP system).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of general-purpose cores.
    pub cores: usize,
    /// Core clock.
    pub clock_hz: Hz,
    /// Issue width (superscalar ways).
    pub issue_width: usize,
    /// Double-precision FLOPs per core per cycle at peak (SIMD + FMA).
    pub flops_per_cycle: f64,
    /// Private L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Outstanding memory requests per core (MLP).
    pub mlp: usize,
}

/// The NDP side: wimpy in-order cores in the logic layer of each stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NdpConfig {
    /// Memory stacks in the package (arranged in a mesh).
    pub stacks: usize,
    /// NDP units per stack.
    pub units_per_stack: usize,
    /// Cores per NDP unit.
    pub cores_per_unit: usize,
    /// NDP core clock.
    pub clock_hz: Hz,
    /// Double-precision FLOPs per core per cycle (in-order, narrow SIMD).
    pub flops_per_cycle: f64,
    /// Per-core L1 (NDP units have no L2/L3; they sit on the stack).
    pub l1: CacheConfig,
    /// DRAM capacity per NDP unit in bytes.
    pub dram_per_unit: usize,
    /// Outstanding memory requests per core.
    pub mlp: usize,
}

impl NdpConfig {
    /// Total NDP cores across all stacks.
    pub fn total_cores(&self) -> usize {
        self.stacks * self.units_per_stack * self.cores_per_unit
    }

    /// Total stacked-DRAM capacity in bytes.
    pub fn total_dram(&self) -> usize {
        self.stacks * self.units_per_stack * self.dram_per_unit
    }
}

/// Scratchpad memory in each stack's logic layer (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmConfig {
    /// SPM capacity per NDP core in bytes.
    pub per_core_bytes: usize,
    /// SPM capacity per stack in bytes.
    pub per_stack_bytes: usize,
    /// Access latency in NDP-core cycles.
    pub access_latency: u64,
}

/// DRAM device timing, expressed in memory-clock cycles.
///
/// The model is deliberately at the Ramulator level of abstraction:
/// activate/read/precharge state per bank, burst occupancy on the channel
/// data bus, and FR-FCFS arbitration (see [`crate::dram`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTimings {
    /// Memory clock in Hz (the paper's HBM2 runs the bus at 1000 MHz).
    pub clock_hz: Hz,
    /// Column access strobe latency (cycles).
    pub t_cas: u64,
    /// Row-to-column delay (cycles).
    pub t_rcd: u64,
    /// Row precharge (cycles).
    pub t_rp: u64,
    /// Row active minimum (cycles).
    pub t_ras: u64,
    /// Cycles the data bus is busy per burst (BL/2 for DDR).
    pub t_burst: u64,
    /// Bytes transferred per burst.
    pub burst_bytes: usize,
    /// Average refresh interval (cycles); 0 disables refresh.
    pub t_refi: u64,
    /// Refresh cycle time: the channel is blocked this long per refresh.
    pub t_rfc: u64,
}

impl DramTimings {
    /// HBM2-class timings: 128-bit bus per channel @ 1000 MHz DDR,
    /// 32 B per 2-cycle burst ⇒ 16 GB/s per channel pin bandwidth.
    /// Refresh: tREFI 3.9 µs, tRFC 260 ns.
    pub fn hbm2() -> Self {
        DramTimings {
            clock_hz: 1.0e9,
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
            t_ras: 33,
            t_burst: 2,
            burst_bytes: 32,
            t_refi: 3_900,
            t_rfc: 260,
        }
    }

    /// DDR4-2400-class timings: 64-bit bus @ 1200 MHz DDR, 64 B per
    /// 4-cycle burst ⇒ 19.2 GB/s per channel pin bandwidth.
    /// Refresh: tREFI 7.8 µs, tRFC 350 ns.
    pub fn ddr4() -> Self {
        DramTimings {
            clock_hz: 1.2e9,
            t_cas: 16,
            t_rcd: 16,
            t_rp: 16,
            t_ras: 39,
            t_burst: 4,
            burst_bytes: 64,
            t_refi: 9_360,
            t_rfc: 420,
        }
    }

    /// DDR5-4800-class timings: two independent 32-bit subchannels per
    /// DIMM behave like one 64-bit channel at twice the clock; 64 B per
    /// 4-cycle burst @ 2400 MHz DDR ⇒ 38.4 GB/s per channel pin
    /// bandwidth. Same-bank refresh folded into an all-bank equivalent.
    pub fn ddr5() -> Self {
        DramTimings {
            clock_hz: 2.4e9,
            t_cas: 40,
            t_rcd: 39,
            t_rp: 39,
            t_ras: 76,
            t_burst: 4,
            burst_bytes: 64,
            t_refi: 9_360,
            t_rfc: 700,
        }
    }

    /// HBM3-class timings: 6.4 Gb/s/pin on a 64-bit pseudo-channel pair
    /// modeled as one 128-bit channel @ 1600 MHz DDR, 32 B per 2-cycle
    /// burst ⇒ 25.6 GB/s per channel pin bandwidth.
    pub fn hbm3() -> Self {
        DramTimings {
            clock_hz: 1.6e9,
            t_cas: 22,
            t_rcd: 22,
            t_rp: 22,
            t_ras: 52,
            t_burst: 2,
            burst_bytes: 32,
            t_refi: 6_240,
            t_rfc: 416,
        }
    }

    /// Pin (peak) bandwidth of one channel in bytes/second.
    pub fn channel_peak_bw(&self) -> f64 {
        self.burst_bytes as f64 / (self.t_burst as f64 / self.clock_hz)
    }

    /// Fraction of time lost to refresh (`tRFC / tREFI`).
    pub fn refresh_overhead(&self) -> f64 {
        if self.t_refi == 0 {
            0.0
        } else {
            self.t_rfc as f64 / self.t_refi as f64
        }
    }
}

/// Geometry of the stacked-DRAM memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Device timing preset.
    pub timings: DramTimings,
    /// Channels per stack (8 for the paper's HBM2).
    pub channels_per_stack: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
}

/// The inter-stack mesh network (§II-B: "4 × 4 stacks in mesh").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshConfig {
    /// Mesh width (stacks per row).
    pub width: usize,
    /// Mesh height.
    pub height: usize,
    /// Per-hop router+link latency in NoC cycles.
    pub hop_latency: u64,
    /// NoC clock.
    pub clock_hz: Hz,
    /// Link width in bytes per NoC cycle.
    pub link_bytes_per_cycle: usize,
}

impl MeshConfig {
    /// Total stacks in the mesh.
    pub fn stacks(&self) -> usize {
        self.width * self.height
    }

    /// Manhattan (XY-routed) hop count between two stacks.
    ///
    /// # Panics
    ///
    /// Panics if either stack id is out of range.
    pub fn hops(&self, from: usize, to: usize) -> u64 {
        assert!(
            from < self.stacks() && to < self.stacks(),
            "stack id out of range"
        );
        let (fx, fy) = (from % self.width, from / self.width);
        let (tx, ty) = (to % self.width, to / self.width);
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }
}

/// The off-chip link connecting the host CPU to the stacked memory
/// (SerDes-style, far narrower than the internal stack bandwidth — this
/// asymmetry is the entire premise of near-data processing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLinkConfig {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way latency in seconds.
    pub latency: f64,
}

/// Full CPU-NDP system configuration (the paper's Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Host CPU complex.
    pub cpu: CpuConfig,
    /// NDP cores in the stacks.
    pub ndp: NdpConfig,
    /// Stacked-DRAM subsystem.
    pub memory: MemoryConfig,
    /// Inter-stack mesh.
    pub mesh: MeshConfig,
    /// Logic-layer scratchpads.
    pub spm: SpmConfig,
    /// CPU ↔ stack link.
    pub host_link: HostLinkConfig,
}

impl SystemConfig {
    /// The exact configuration of the paper's Table III.
    ///
    /// # Examples
    ///
    /// ```
    /// use ndft_sim::SystemConfig;
    /// let cfg = SystemConfig::paper_table3();
    /// assert_eq!(cfg.cpu.cores, 8);
    /// assert_eq!(cfg.ndp.total_cores(), 256);
    /// assert_eq!(cfg.memory.capacity_bytes, 64 * ndft_sim::config::GIB);
    /// ```
    pub fn paper_table3() -> Self {
        let line = 64;
        SystemConfig {
            cpu: CpuConfig {
                cores: 8,
                clock_hz: 3.0e9,
                issue_width: 4,
                // 4-way superscalar with AVX-512 FMA: 16 DP FLOP/cycle.
                flops_per_cycle: 16.0,
                l1d: CacheConfig {
                    size_bytes: 32 * KIB,
                    ways: 8,
                    line_bytes: line,
                    hit_latency: 4,
                },
                l2: CacheConfig {
                    size_bytes: 256 * KIB,
                    ways: 8,
                    line_bytes: line,
                    hit_latency: 12,
                },
                l3: CacheConfig {
                    size_bytes: 2 * MIB,
                    ways: 16,
                    line_bytes: line,
                    hit_latency: 38,
                },
                mlp: 10,
            },
            ndp: NdpConfig {
                stacks: 16,
                units_per_stack: 8,
                cores_per_unit: 2,
                clock_hz: 2.0e9,
                // Wimpy in-order core with a dual-issue 128-bit FMA unit:
                // 4 DP FLOP/cycle.
                flops_per_cycle: 4.0,
                l1: CacheConfig {
                    size_bytes: 32 * KIB,
                    ways: 4,
                    line_bytes: line,
                    hit_latency: 2,
                },
                dram_per_unit: 512 * MIB,
                mlp: 4,
            },
            memory: MemoryConfig {
                timings: DramTimings::hbm2(),
                channels_per_stack: 8,
                banks_per_channel: 16,
                row_bytes: 2 * KIB,
                capacity_bytes: 64 * GIB,
            },
            mesh: MeshConfig {
                width: 4,
                height: 4,
                hop_latency: 3,
                clock_hz: 2.0e9,
                link_bytes_per_cycle: 16,
            },
            spm: SpmConfig {
                per_core_bytes: 16 * KIB,
                per_stack_bytes: 256 * KIB,
                access_latency: 2,
            },
            host_link: HostLinkConfig {
                // SerDes link to the memory package: 64 GB/s, 40 ns one way.
                bandwidth: 64.0e9,
                latency: 40.0e-9,
            },
        }
    }

    /// Peak double-precision FLOP/s of the host CPU complex.
    pub fn cpu_peak_flops(&self) -> f64 {
        self.cpu.cores as f64 * self.cpu.clock_hz * self.cpu.flops_per_cycle
    }

    /// Peak double-precision FLOP/s of all NDP cores.
    pub fn ndp_peak_flops(&self) -> f64 {
        self.ndp.total_cores() as f64 * self.ndp.clock_hz * self.ndp.flops_per_cycle
    }

    /// Aggregate internal pin bandwidth of all stacks (bytes/s).
    pub fn ndp_peak_bandwidth(&self) -> f64 {
        self.memory.timings.channel_peak_bw()
            * (self.memory.channels_per_stack * self.ndp.stacks) as f64
    }
}

/// Configuration of the standalone CPU baseline (2× Xeon E5-2695, §V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuBaselineConfig {
    /// Total cores across both sockets.
    pub cores: usize,
    /// Core clock.
    pub clock_hz: Hz,
    /// DP FLOPs per core per cycle.
    pub flops_per_cycle: f64,
    /// DDR4 timing preset.
    pub timings: DramTimings,
    /// Total DDR channels across sockets.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer bytes.
    pub row_bytes: usize,
    /// Memory capacity in bytes.
    pub capacity_bytes: usize,
    /// Last-level cache per socket.
    pub llc: CacheConfig,
}

impl CpuBaselineConfig {
    /// The paper's CPU baseline: 2 × Xeon E5-2695 @ 2.4 GHz, 12 cores per
    /// socket, 64 GB DDR4.
    pub fn paper_baseline() -> Self {
        CpuBaselineConfig {
            cores: 24,
            clock_hz: 2.4e9,
            flops_per_cycle: 8.0,
            timings: DramTimings::ddr4(),
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 8 * KIB,
            capacity_bytes: 64 * GIB,
            llc: CacheConfig {
                size_bytes: 30 * MIB,
                ways: 20,
                line_bytes: 64,
                hit_latency: 40,
            },
        }
    }

    /// Peak DP FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.clock_hz * self.flops_per_cycle
    }

    /// Aggregate pin bandwidth (bytes/s).
    pub fn peak_bandwidth(&self) -> f64 {
        self.timings.channel_peak_bw() * self.channels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let cfg = SystemConfig::paper_table3();
        assert_eq!(cfg.cpu.cores, 8);
        assert_eq!(cfg.cpu.issue_width, 4);
        assert!((cfg.cpu.clock_hz - 3.0e9).abs() < 1.0);
        assert_eq!(cfg.ndp.stacks, 16);
        assert_eq!(cfg.ndp.units_per_stack, 8);
        assert_eq!(cfg.ndp.cores_per_unit, 2);
        assert_eq!(cfg.ndp.total_cores(), 256);
        assert_eq!(cfg.ndp.total_dram(), 64 * GIB);
        assert_eq!(cfg.memory.channels_per_stack, 8);
        assert_eq!(cfg.mesh.stacks(), 16);
        assert_eq!(cfg.spm.per_core_bytes, 16 * KIB);
        assert_eq!(cfg.spm.per_stack_bytes, 256 * KIB);
    }

    #[test]
    fn hbm_channel_bandwidth_is_16_gbs() {
        let t = DramTimings::hbm2();
        // 32 B per 2 cycles @ 1 GHz = 16 GB/s.
        assert!((t.channel_peak_bw() - 16.0e9).abs() / 16.0e9 < 1e-12);
    }

    #[test]
    fn next_generation_presets_raise_pin_bandwidth() {
        // DDR5-4800: 64 B / 4 cycles @ 2.4 GHz = 38.4 GB/s.
        let ddr5 = DramTimings::ddr5();
        assert!((ddr5.channel_peak_bw() - 38.4e9).abs() / 38.4e9 < 1e-12);
        assert!(ddr5.channel_peak_bw() > 1.9 * DramTimings::ddr4().channel_peak_bw());
        // HBM3: 32 B / 2 cycles @ 1.6 GHz = 25.6 GB/s.
        let hbm3 = DramTimings::hbm3();
        assert!((hbm3.channel_peak_bw() - 25.6e9).abs() / 25.6e9 < 1e-12);
        assert!(hbm3.channel_peak_bw() > 1.5 * DramTimings::hbm2().channel_peak_bw());
        // Latency in *seconds* stays flat across generations even as the
        // cycle counts grow with the clock.
        for t in [ddr5, hbm3] {
            let secs = (t.t_rcd + t.t_cas) as f64 / t.clock_hz;
            assert!(secs > 10e-9 && secs < 50e-9, "{secs}");
        }
    }

    #[test]
    fn ndp_aggregate_bandwidth_dwarfs_host_link() {
        let cfg = SystemConfig::paper_table3();
        // 16 stacks × 8 ch × 16 GB/s = 2048 GB/s internal.
        assert!(cfg.ndp_peak_bandwidth() > 2.0e12);
        assert!(cfg.ndp_peak_bandwidth() > 10.0 * cfg.host_link.bandwidth);
    }

    #[test]
    fn cache_sets_divide() {
        let cfg = SystemConfig::paper_table3();
        assert_eq!(cfg.cpu.l1d.sets(), 64);
        assert_eq!(cfg.cpu.l2.sets(), 512);
    }

    #[test]
    fn mesh_hops_are_manhattan() {
        let mesh = SystemConfig::paper_table3().mesh;
        assert_eq!(mesh.hops(0, 0), 0);
        assert_eq!(mesh.hops(0, 3), 3);
        assert_eq!(mesh.hops(0, 15), 6);
        assert_eq!(mesh.hops(5, 10), 2);
    }

    #[test]
    fn peaks_are_consistent() {
        let cfg = SystemConfig::paper_table3();
        assert!((cfg.cpu_peak_flops() - 384.0e9).abs() / 384.0e9 < 1e-12);
        assert!((cfg.ndp_peak_flops() - 2048.0e9).abs() / 2048.0e9 < 1e-12);
        let base = CpuBaselineConfig::paper_baseline();
        assert!(base.peak_flops() > cfg.cpu_peak_flops());
    }

    #[test]
    fn baseline_bandwidth_is_ddr_class() {
        let base = CpuBaselineConfig::paper_baseline();
        let bw = base.peak_bandwidth();
        assert!(bw > 100.0e9 && bw < 200.0e9, "DDR4 aggregate {bw}");
    }
}
