//! DRAM timing model (the Ramulator-level substrate).
//!
//! Models each channel as a set of banks with open-row state plus a shared
//! data bus, serviced by an FR-FCFS scheduler (row hits first, then oldest).
//! Timing is expressed in memory-clock cycles using the presets in
//! [`crate::config::DramTimings`].
//!
//! The model tracks, per request: row-buffer outcome (hit / closed /
//! conflict), command latency, bus serialization, and `tRAS` row-cycle
//! constraints. It is an approximation at the same altitude as fast DRAM
//! simulators: good to a few percent on achieved bandwidth, which is what
//! the NDFT study consumes (relative stream vs strided vs random behaviour
//! of DDR4 and HBM2).

use crate::config::DramTimings;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A single memory request presented to the DRAM model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Physical byte address.
    pub addr: u64,
    /// True for writes (timing-symmetric in this model, tracked for stats).
    pub is_write: bool,
    /// Arrival time at the controller, in memory cycles.
    pub arrival: u64,
}

/// Row-buffer outcome of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open.
    Hit,
    /// The bank was idle; an activate was needed.
    Closed,
    /// Another row was open; precharge + activate were needed.
    Conflict,
}

/// Memory-controller request scheduling policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// First-ready, first-come-first-served: the controller scans its
    /// queue window for the oldest arrived row hit (the Ramulator
    /// default, and the paper's implicit assumption).
    #[default]
    FrFcfs,
    /// Strictly oldest-first, ignoring row-buffer state. The classic
    /// ablation baseline: cheap to build, poor at locality extraction.
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Leave the row open after a column access, betting on locality.
    #[default]
    OpenPage,
    /// Auto-precharge after every column access, betting against it.
    /// Conflicts disappear (every access activates a closed bank) at the
    /// price of losing all row hits.
    ClosedPage,
}

/// Aggregate statistics from servicing a request batch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Activates issued to idle banks.
    pub row_closed: u64,
    /// Precharge+activate pairs from conflicts.
    pub row_conflicts: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Cycle the last burst finished.
    pub makespan_cycles: u64,
    /// Sum of per-request latencies (completion − arrival), in cycles.
    pub total_latency_cycles: u64,
}

impl DramStats {
    /// Achieved bandwidth in bytes/second for a given memory clock.
    pub fn bandwidth(&self, clock_hz: f64) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        self.bytes as f64 / (self.makespan_cycles as f64 / clock_hz)
    }

    /// Mean request latency in seconds.
    pub fn avg_latency(&self, clock_hz: f64) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        (self.total_latency_cycles as f64 / self.requests as f64) / clock_hz
    }

    /// Fraction of requests that hit the row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.requests as f64
    }
}

/// Physical address decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command (tCCD
    /// pipelining: one CAS per burst slot, not one per CAS latency).
    cas_ready: u64,
    /// Cycle of the last activate (for tRAS).
    activated_at: u64,
}

/// FR-FCFS lookahead window: how many queued requests the controller
/// examines when hunting for a row hit (real controllers have 32-64 entry
/// queues).
const SCHED_WINDOW: usize = 32;

#[derive(Debug, Clone, Default)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
    queue: VecDeque<(u64, MemRequest)>, // (seq, request)
    /// Cycle of the next all-bank refresh.
    next_refresh: u64,
}

/// The DRAM device + controller model.
///
/// # Examples
///
/// ```
/// use ndft_sim::dram::{DramModel, MemRequest};
/// use ndft_sim::config::DramTimings;
///
/// let mut dram = DramModel::new(DramTimings::hbm2(), 8, 16, 2048);
/// let reqs: Vec<_> = (0..4096u64)
///     .map(|i| MemRequest { addr: i * 32, is_write: false, arrival: 0 })
///     .collect();
/// let stats = dram.service_batch(&reqs);
/// let bw = stats.bandwidth(DramTimings::hbm2().clock_hz);
/// assert!(bw > 0.5 * 128.0e9); // streaming sustains most of 8×16 GB/s
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    timings: DramTimings,
    n_channels: usize,
    banks_per_channel: usize,
    row_bytes: usize,
    channels: Vec<Channel>,
    seq: u64,
    sched: SchedPolicy,
    row_policy: RowPolicy,
}

impl DramModel {
    /// Creates a model with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any geometry parameter is zero or `row_bytes` is not a
    /// multiple of the burst size.
    pub fn new(
        timings: DramTimings,
        n_channels: usize,
        banks_per_channel: usize,
        row_bytes: usize,
    ) -> Self {
        assert!(n_channels > 0 && banks_per_channel > 0 && row_bytes > 0);
        assert!(
            row_bytes.is_multiple_of(timings.burst_bytes),
            "row size must be a whole number of bursts"
        );
        let channels = (0..n_channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); banks_per_channel],
                bus_free_at: 0,
                queue: VecDeque::new(),
                next_refresh: timings.t_refi,
            })
            .collect();
        DramModel {
            timings,
            n_channels,
            banks_per_channel,
            row_bytes,
            channels,
            seq: 0,
            sched: SchedPolicy::default(),
            row_policy: RowPolicy::default(),
        }
    }

    /// Same geometry, explicit controller policies (for ablations).
    pub fn with_policies(
        timings: DramTimings,
        n_channels: usize,
        banks_per_channel: usize,
        row_bytes: usize,
        sched: SchedPolicy,
        row_policy: RowPolicy,
    ) -> Self {
        let mut model = DramModel::new(timings, n_channels, banks_per_channel, row_bytes);
        model.sched = sched;
        model.row_policy = row_policy;
        model
    }

    /// The scheduling policy in effect.
    pub fn sched_policy(&self) -> SchedPolicy {
        self.sched
    }

    /// The row-buffer policy in effect.
    pub fn row_policy(&self) -> RowPolicy {
        self.row_policy
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.n_channels
    }

    /// Burst granularity in bytes.
    pub fn burst_bytes(&self) -> usize {
        self.timings.burst_bytes
    }

    /// Decodes an address: channel-interleaved at burst granularity, then
    /// column, bank, row (an open-page-friendly mapping).
    pub fn decode(&self, addr: u64) -> Decoded {
        let block = addr / self.timings.burst_bytes as u64;
        let channel = (block % self.n_channels as u64) as usize;
        let rest = block / self.n_channels as u64;
        let cols_per_row = (self.row_bytes / self.timings.burst_bytes) as u64;
        let rest2 = rest / cols_per_row;
        let bank = (rest2 % self.banks_per_channel as u64) as usize;
        let row = rest2 / self.banks_per_channel as u64;
        Decoded { channel, bank, row }
    }

    /// Resets all bank and bus state (open rows, timestamps, queues).
    pub fn reset(&mut self) {
        for ch in &mut self.channels {
            for b in &mut ch.banks {
                *b = Bank::default();
            }
            ch.bus_free_at = 0;
            ch.queue.clear();
            ch.next_refresh = self.timings.t_refi;
        }
        self.seq = 0;
    }

    /// Services a batch of requests to completion and returns aggregate
    /// statistics. Requests are distributed to their channels and each
    /// channel is scheduled FR-FCFS (ready row-hits first, then oldest).
    pub fn service_batch(&mut self, requests: &[MemRequest]) -> DramStats {
        let mut stats = DramStats::default();
        // Partition into per-channel queues, preserving arrival order.
        let mut per_channel: Vec<Vec<(u64, MemRequest, Decoded)>> =
            (0..self.n_channels).map(|_| Vec::new()).collect();
        for req in requests {
            let d = self.decode(req.addr);
            per_channel[d.channel].push((self.seq, *req, d));
            self.seq += 1;
        }
        let t = self.timings;
        for (ci, mut reqs) in per_channel.into_iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            reqs.sort_by_key(|(seq, r, _)| (r.arrival, *seq));
            let ch = &mut self.channels[ci];
            let mut pending: VecDeque<(u64, MemRequest, Decoded)> = reqs.into();
            let mut now: u64 = 0;
            while !pending.is_empty() {
                // Advance to the head's arrival if the queue ran dry.
                let head_arrival = pending.front().map(|(_, r, _)| r.arrival).unwrap();
                if now < head_arrival {
                    now = head_arrival;
                }
                // All-bank refresh: blocks the channel for tRFC, closes
                // every row.
                if t.t_refi > 0 && now >= ch.next_refresh {
                    let refresh_end = ch.next_refresh + t.t_rfc;
                    for bank in &mut ch.banks {
                        bank.open_row = None;
                        bank.cas_ready = bank.cas_ready.max(refresh_end);
                    }
                    ch.bus_free_at = ch.bus_free_at.max(refresh_end);
                    ch.next_refresh += t.t_refi;
                    now = now.max(refresh_end);
                }
                // FR-FCFS: prefer the oldest *arrived* request that hits an
                // open row, searching a bounded controller window. FCFS
                // always takes the head.
                let pick = match self.sched {
                    SchedPolicy::Fcfs => 0,
                    SchedPolicy::FrFcfs => {
                        let window = SCHED_WINDOW.min(pending.len());
                        (0..window)
                            .find(|&i| {
                                let (_, r, d) = &pending[i];
                                r.arrival <= now && ch.banks[d.bank].open_row == Some(d.row)
                            })
                            .unwrap_or(0)
                    }
                };
                let (_, req, d) = pending.remove(pick).expect("pick is in range");
                let bank = &mut ch.banks[d.bank];
                let at = now.max(req.arrival);
                let (outcome, cas_issue) = match bank.open_row {
                    Some(r) if r == d.row => (RowOutcome::Hit, at.max(bank.cas_ready)),
                    Some(_) => {
                        // Precharge may not start before tRAS expires.
                        let pre_start = at.max(bank.activated_at + t.t_ras).max(bank.cas_ready);
                        let act_at = pre_start + t.t_rp;
                        bank.activated_at = act_at;
                        (RowOutcome::Conflict, act_at + t.t_rcd)
                    }
                    None => {
                        let act_at = at.max(bank.cas_ready);
                        bank.activated_at = act_at;
                        (RowOutcome::Closed, act_at + t.t_rcd)
                    }
                };
                match self.row_policy {
                    RowPolicy::OpenPage => {
                        bank.open_row = Some(d.row);
                        // Column commands pipeline at burst (tCCD) granularity.
                        bank.cas_ready = cas_issue + t.t_burst;
                    }
                    RowPolicy::ClosedPage => {
                        // Auto-precharge: the bank closes after the access;
                        // the next activate must wait for tRAS and the
                        // precharge itself.
                        bank.open_row = None;
                        let pre_done =
                            (cas_issue + t.t_burst).max(bank.activated_at + t.t_ras) + t.t_rp;
                        bank.cas_ready = pre_done;
                    }
                }
                let data_ready = cas_issue + t.t_cas;
                let data_start = data_ready.max(ch.bus_free_at);
                let done = data_start + t.t_burst;
                ch.bus_free_at = done;
                now = now.max(cas_issue);
                stats.requests += 1;
                stats.bytes += t.burst_bytes as u64;
                stats.total_latency_cycles += done - req.arrival;
                stats.makespan_cycles = stats.makespan_cycles.max(done);
                match outcome {
                    RowOutcome::Hit => stats.row_hits += 1,
                    RowOutcome::Closed => stats.row_closed += 1,
                    RowOutcome::Conflict => stats.row_conflicts += 1,
                }
            }
        }
        stats
    }

    /// Latency in cycles of a single request issued to an idle device.
    pub fn idle_latency(&mut self) -> u64 {
        self.reset();
        let stats = self.service_batch(&[MemRequest {
            addr: 0,
            is_write: false,
            arrival: 0,
        }]);
        self.reset();
        stats.total_latency_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> DramModel {
        DramModel::new(DramTimings::hbm2(), 8, 16, 2048)
    }

    fn stream_requests(n: usize, step: u64) -> Vec<MemRequest> {
        (0..n as u64)
            .map(|i| MemRequest {
                addr: i * step,
                is_write: false,
                arrival: 0,
            })
            .collect()
    }

    #[test]
    fn decode_interleaves_channels() {
        let d = hbm();
        let a = d.decode(0);
        let b = d.decode(32);
        let c = d.decode(64);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!(c.channel, 2);
    }

    #[test]
    fn decode_same_row_for_consecutive_blocks_in_channel() {
        let d = hbm();
        // Blocks 0 and 8 are in channel 0; row bytes 2048 / 32 B = 64 cols.
        let a = d.decode(0);
        let b = d.decode(8 * 32);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
    }

    #[test]
    fn streaming_achieves_high_bandwidth() {
        let mut d = hbm();
        let stats = d.service_batch(&stream_requests(16384, 32));
        let bw = stats.bandwidth(DramTimings::hbm2().clock_hz);
        let peak = 8.0 * DramTimings::hbm2().channel_peak_bw();
        assert!(bw > 0.8 * peak, "stream bw {bw:.3e} vs peak {peak:.3e}");
        assert!(stats.row_hit_rate() > 0.9);
    }

    #[test]
    fn random_is_much_slower_than_stream() {
        let mut d = hbm();
        let stream = d.service_batch(&stream_requests(8192, 32));
        d.reset();
        // LCG-scrambled addresses spread over 1 GiB.
        let mut x = 0x12345678u64;
        let random: Vec<MemRequest> = (0..8192)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                MemRequest {
                    addr: (x >> 10) % (1 << 30),
                    is_write: false,
                    arrival: 0,
                }
            })
            .collect();
        let rand_stats = d.service_batch(&random);
        let clock = DramTimings::hbm2().clock_hz;
        assert!(
            stream.bandwidth(clock) > 2.0 * rand_stats.bandwidth(clock),
            "stream {:.3e} vs random {:.3e}",
            stream.bandwidth(clock),
            rand_stats.bandwidth(clock)
        );
        assert!(rand_stats.row_hit_rate() < 0.5);
    }

    #[test]
    fn single_request_latency_is_rcd_plus_cas_plus_burst() {
        let mut d = hbm();
        let t = DramTimings::hbm2();
        assert_eq!(d.idle_latency(), t.t_rcd + t.t_cas + t.t_burst);
    }

    #[test]
    fn bank_conflict_pays_precharge() {
        let t = DramTimings::hbm2();
        let mut d = DramModel::new(t, 1, 1, 2048);
        // Two different rows in the same (only) bank.
        let reqs = [
            MemRequest {
                addr: 0,
                is_write: false,
                arrival: 0,
            },
            MemRequest {
                addr: 4096,
                is_write: false,
                arrival: 0,
            },
        ];
        let stats = d.service_batch(&reqs);
        assert_eq!(stats.row_conflicts, 1);
        // Second request must wait for tRAS + tRP + tRCD + tCAS.
        let min_completion = t.t_ras + t.t_rp + t.t_rcd + t.t_cas + t.t_burst;
        assert!(stats.makespan_cycles >= min_completion);
    }

    #[test]
    fn ddr4_stream_bandwidth_matches_pin_rate() {
        let t = DramTimings::ddr4();
        let mut d = DramModel::new(t, 8, 16, 8192);
        let reqs: Vec<MemRequest> = (0..16384u64)
            .map(|i| MemRequest {
                addr: i * 64,
                is_write: false,
                arrival: 0,
            })
            .collect();
        let stats = d.service_batch(&reqs);
        let bw = stats.bandwidth(t.clock_hz);
        let peak = 8.0 * t.channel_peak_bw();
        assert!(
            bw > 0.8 * peak && bw <= peak * 1.001,
            "bw {bw:.3e} peak {peak:.3e}"
        );
    }

    #[test]
    fn stats_bandwidth_zero_for_empty_batch() {
        let mut d = hbm();
        let stats = d.service_batch(&[]);
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.bandwidth(1.0e9), 0.0);
    }

    #[test]
    fn reset_clears_row_state() {
        let mut d = hbm();
        let _ = d.service_batch(&stream_requests(64, 32));
        d.reset();
        let stats = d.service_batch(&[MemRequest {
            addr: 0,
            is_write: false,
            arrival: 0,
        }]);
        assert_eq!(stats.row_closed, 1);
    }

    #[test]
    fn refresh_costs_a_few_percent_of_stream_bandwidth() {
        let with = DramTimings::hbm2();
        let mut without = with;
        without.t_refi = 0;
        let reqs = stream_requests(65_536, 32);
        let mut d_with = DramModel::new(with, 8, 16, 2048);
        let mut d_without = DramModel::new(without, 8, 16, 2048);
        let bw_with = d_with.service_batch(&reqs).bandwidth(with.clock_hz);
        let bw_without = d_without.service_batch(&reqs).bandwidth(with.clock_hz);
        assert!(bw_with < bw_without, "refresh must cost something");
        let loss = 1.0 - bw_with / bw_without;
        // tRFC/tREFI = 260/3900 ≈ 6.7 % upper bound; the scheduler's lag
        // behind the data bus under-triggers slightly, so accept 1.5–15 %.
        assert!(loss > 0.015 && loss < 0.15, "refresh loss {loss}");
    }

    #[test]
    fn single_early_request_unaffected_by_refresh() {
        // The first request completes long before the first tREFI expires.
        let mut d = hbm();
        let t = DramTimings::hbm2();
        assert_eq!(d.idle_latency(), t.t_rcd + t.t_cas + t.t_burst);
    }

    /// Two interleaved row streams in one bank: FR-FCFS reorders to batch
    /// row hits, FCFS ping-pongs between the rows.
    fn interleaved_rows(n: usize) -> Vec<MemRequest> {
        (0..n as u64)
            .map(|i| {
                let row = i % 2;
                let col = i / 2;
                MemRequest {
                    addr: row * 4096 + col * 32,
                    is_write: false,
                    arrival: 0,
                }
            })
            .collect()
    }

    #[test]
    fn frfcfs_beats_fcfs_on_interleaved_rows() {
        let t = DramTimings::hbm2();
        let reqs = interleaved_rows(512);
        let mut fr =
            DramModel::with_policies(t, 1, 1, 2048, SchedPolicy::FrFcfs, RowPolicy::OpenPage);
        let mut fc =
            DramModel::with_policies(t, 1, 1, 2048, SchedPolicy::Fcfs, RowPolicy::OpenPage);
        let fr_stats = fr.service_batch(&reqs);
        let fc_stats = fc.service_batch(&reqs);
        assert!(
            fr_stats.row_hits > fc_stats.row_hits,
            "{fr_stats:?} vs {fc_stats:?}"
        );
        assert!(
            fr_stats.makespan_cycles < fc_stats.makespan_cycles,
            "FR-FCFS {} vs FCFS {}",
            fr_stats.makespan_cycles,
            fc_stats.makespan_cycles
        );
    }

    #[test]
    fn closed_page_eliminates_conflicts_but_loses_hits() {
        let t = DramTimings::hbm2();
        let reqs = interleaved_rows(256);
        let mut open =
            DramModel::with_policies(t, 1, 1, 2048, SchedPolicy::Fcfs, RowPolicy::OpenPage);
        let mut closed =
            DramModel::with_policies(t, 1, 1, 2048, SchedPolicy::Fcfs, RowPolicy::ClosedPage);
        let open_stats = open.service_batch(&reqs);
        let closed_stats = closed.service_batch(&reqs);
        assert_eq!(closed_stats.row_hits, 0);
        assert_eq!(closed_stats.row_conflicts, 0);
        assert!(open_stats.row_conflicts > 0);
        // Ping-pong FCFS traffic: closed page avoids the explicit
        // precharge on the critical path, finishing no slower.
        assert!(closed_stats.makespan_cycles <= open_stats.makespan_cycles);
    }

    #[test]
    fn closed_page_hurts_streaming() {
        let t = DramTimings::hbm2();
        let reqs = stream_requests(4096, 32);
        let mut open = DramModel::new(t, 8, 16, 2048);
        let mut closed =
            DramModel::with_policies(t, 8, 16, 2048, SchedPolicy::FrFcfs, RowPolicy::ClosedPage);
        let bw_open = open.service_batch(&reqs).bandwidth(t.clock_hz);
        let bw_closed = closed.service_batch(&reqs).bandwidth(t.clock_hz);
        assert!(
            bw_open > 1.5 * bw_closed,
            "open {bw_open:.3e} vs closed {bw_closed:.3e}"
        );
    }

    #[test]
    fn default_policies_are_frfcfs_open_page() {
        let d = hbm();
        assert_eq!(d.sched_policy(), SchedPolicy::FrFcfs);
        assert_eq!(d.row_policy(), RowPolicy::OpenPage);
    }
}
