//! Energy model for the evaluation platforms.
//!
//! Near-data processing trades compute efficiency for data-movement
//! efficiency; the canonical way to show it is energy per operation.
//! This model uses published per-bit/per-FLOP energy constants
//! (Horowitz ISSCC'14 lineage, HBM/DDR datasheet-class numbers) and
//! integrates them over a kernel's FLOPs, memory traffic, and
//! interconnect traffic.
//!
//! All constants are picojoules; results are joules.

use serde::{Deserialize, Serialize};

/// Per-operation energy constants of one platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per double-precision FLOP (pJ).
    pub pj_per_flop: f64,
    /// Energy per byte moved through the main memory system (pJ/B).
    pub pj_per_dram_byte: f64,
    /// Energy per byte moved across the external interconnect —
    /// host link, PCIe, or mesh (pJ/B).
    pub pj_per_link_byte: f64,
    /// Static/leakage power of the platform while the kernel runs (W).
    pub static_watts: f64,
}

impl EnergyModel {
    /// Server-class out-of-order CPU with off-package DDR4:
    /// ~20 pJ/FLOP core energy, ~55 pJ/B DDR access (≈7 pJ/bit),
    /// inter-socket traffic ~10 pJ/B.
    pub fn server_cpu() -> Self {
        EnergyModel {
            pj_per_flop: 20.0,
            pj_per_dram_byte: 55.0,
            pj_per_link_byte: 10.0,
            static_watts: 120.0,
        }
    }

    /// Discrete GPU with on-package HBM2: efficient compute
    /// (~8 pJ/FLOP), cheap HBM (~30 pJ/B), expensive PCIe (~175 pJ/B ≈
    /// 22 pJ/bit including PHY + host DDR on the far side).
    pub fn gpu_v100() -> Self {
        EnergyModel {
            pj_per_flop: 8.0,
            pj_per_dram_byte: 30.0,
            pj_per_link_byte: 175.0,
            static_watts: 200.0,
        }
    }

    /// NDP units in the logic layer: wimpy-core compute (~10 pJ/FLOP),
    /// very cheap in-stack DRAM access through TSVs (~12 pJ/B ≈
    /// 1.5 pJ/bit), mesh hops ~25 pJ/B.
    pub fn ndp_stack() -> Self {
        EnergyModel {
            pj_per_flop: 10.0,
            pj_per_dram_byte: 12.0,
            pj_per_link_byte: 25.0,
            static_watts: 60.0,
        }
    }

    /// Host CPU of the CPU-NDP system: same core class as the server
    /// CPU but every byte traverses the off-chip serial link (~60 pJ/B).
    pub fn cpu_ndp_host() -> Self {
        EnergyModel {
            pj_per_flop: 20.0,
            pj_per_dram_byte: 60.0,
            pj_per_link_byte: 60.0,
            static_watts: 60.0,
        }
    }

    /// Dynamic energy of a kernel: FLOPs + DRAM traffic + link traffic.
    pub fn dynamic_energy(&self, flops: u64, dram_bytes: u64, link_bytes: u64) -> f64 {
        (flops as f64 * self.pj_per_flop
            + dram_bytes as f64 * self.pj_per_dram_byte
            + link_bytes as f64 * self.pj_per_link_byte)
            * 1e-12
    }

    /// Total energy including static power over the kernel's runtime.
    pub fn total_energy(
        &self,
        flops: u64,
        dram_bytes: u64,
        link_bytes: u64,
        runtime_s: f64,
    ) -> f64 {
        self.dynamic_energy(flops, dram_bytes, link_bytes) + self.static_watts * runtime_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_byte_costs_dominate_streaming_kernels() {
        // A face-splitting-style kernel: 6 FLOP per 48 B moved.
        let m = EnergyModel::server_cpu();
        let flops = 6_000_000u64;
        let bytes = 48_000_000u64;
        let compute = flops as f64 * m.pj_per_flop;
        let memory = bytes as f64 * m.pj_per_dram_byte;
        assert!(
            memory > 10.0 * compute,
            "memory energy dominates streaming kernels"
        );
    }

    #[test]
    fn ndp_moves_bytes_cheaper_than_everyone() {
        let ndp = EnergyModel::ndp_stack();
        let cpu = EnergyModel::server_cpu();
        let gpu = EnergyModel::gpu_v100();
        assert!(ndp.pj_per_dram_byte < cpu.pj_per_dram_byte);
        assert!(ndp.pj_per_dram_byte < gpu.pj_per_dram_byte);
    }

    #[test]
    fn gpu_computes_cheaper_than_cpu() {
        assert!(EnergyModel::gpu_v100().pj_per_flop < EnergyModel::server_cpu().pj_per_flop);
    }

    #[test]
    fn dynamic_energy_formula() {
        let m = EnergyModel {
            pj_per_flop: 1.0,
            pj_per_dram_byte: 2.0,
            pj_per_link_byte: 3.0,
            static_watts: 0.0,
        };
        let e = m.dynamic_energy(1_000_000, 1_000_000, 1_000_000);
        assert!((e - 6e-6).abs() < 1e-18);
    }

    #[test]
    fn static_power_adds_linearly_with_time() {
        let m = EnergyModel::server_cpu();
        let base = m.total_energy(0, 0, 0, 1.0);
        let double = m.total_energy(0, 0, 0, 2.0);
        assert!((double - 2.0 * base).abs() < 1e-12);
        assert!((base - 120.0).abs() < 1e-9);
    }

    #[test]
    fn pcie_byte_is_the_most_expensive_byte() {
        let gpu = EnergyModel::gpu_v100();
        assert!(gpu.pj_per_link_byte > gpu.pj_per_dram_byte);
        assert!(gpu.pj_per_link_byte > EnergyModel::ndp_stack().pj_per_link_byte);
    }
}
