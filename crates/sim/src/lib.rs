//! # ndft-sim
//!
//! Event-driven CPU–NDP system simulator: the substrate standing in for
//! the paper's zsim + Ramulator stack.
//!
//! The pieces:
//!
//! * [`config`] — structural parameters; [`SystemConfig::paper_table3`]
//!   reproduces the paper's Table III machine.
//! * [`dram`] — bank/row/bus DRAM timing model with FR-FCFS scheduling and
//!   HBM2/DDR4 presets.
//! * [`cache`] — set-associative LRU caches and a three-level hierarchy.
//! * [`noc`] — the 4×4 stack mesh with XY routing and link contention.
//! * [`spm`] — logic-layer scratchpads with explicit allocation.
//! * [`pattern`] — synthetic address streams (stream / strided / random).
//! * [`engine`] — replay harness producing the measured [`Calibration`]
//!   (effective bandwidth per memory system per pattern) consumed by the
//!   machine models in `ndft-core`.
//!
//! ## Example
//!
//! ```
//! use ndft_sim::{Calibration, CpuBaselineConfig, SystemConfig};
//!
//! let sys = SystemConfig::paper_table3();
//! let cal = Calibration::measure(&sys, &CpuBaselineConfig::paper_baseline(), 7);
//! // Near-data premise: in-stack streaming dwarfs what the host link offers.
//! assert!(cal.ndp_aggregate.stream_bw > 10.0 * cal.host_to_stack.stream_bw);
//! ```

pub mod cache;
pub mod config;
pub mod dram;
pub mod energy;
pub mod engine;
pub mod noc;
pub mod pattern;
pub mod spm;
pub mod timing;
pub mod trace;

pub use cache::{Cache, CacheOutcome, CacheStats, Hierarchy, HierarchyAccess};
pub use config::{
    CacheConfig, CpuBaselineConfig, CpuConfig, DramTimings, HostLinkConfig, MemoryConfig,
    MeshConfig, NdpConfig, SpmConfig, SystemConfig,
};
pub use dram::{DramModel, DramStats, MemRequest, RowOutcome, RowPolicy, SchedPolicy};
pub use energy::EnergyModel;
pub use engine::{BandwidthProfile, Calibration};
pub use noc::{MeshNoc, NocStats, Topology, Transfer};
pub use pattern::AccessPattern;
pub use spm::{Scratchpad, SpmError, SpmHandle};
pub use timing::{CoreModel, CoreReport, CoreTimingConfig, KernelTrace, MemPort, MicroOp};
pub use trace::Trace;
