//! Inter-stack mesh network-on-chip model.
//!
//! The paper's memory network is a 4×4 mesh of HBM stacks. Messages are
//! XY-routed; each directed link serializes payloads at
//! `link_bytes_per_cycle` and adds `hop_latency` cycles of router/link
//! delay per hop. Link occupancy is tracked so concurrent flows contend.

use crate::config::MeshConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interconnect topology connecting the stacks.
///
/// The paper's configuration is a 2-D mesh; ring and torus variants are
/// provided for the topology ablation (same link budget per hop, very
/// different bisection behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// 2-D mesh, XY dimension-ordered routing (the paper's choice).
    #[default]
    Mesh,
    /// 2-D torus: mesh plus wrap-around links, shortest-direction routing
    /// per dimension.
    Torus,
    /// 1-D ring over all stacks, shortest direction.
    Ring,
}

/// Outcome of one message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Cycle the message was injected.
    pub start: u64,
    /// Cycle the tail flit arrived at the destination.
    pub done: u64,
    /// Hops traversed.
    pub hops: u64,
}

impl Transfer {
    /// End-to-end latency in NoC cycles.
    pub fn latency(&self) -> u64 {
        self.done - self.start
    }
}

/// Aggregate NoC statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages routed.
    pub messages: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Total hop count.
    pub hops: u64,
    /// Sum of end-to-end latencies (cycles).
    pub total_latency: u64,
}

/// The mesh NoC simulator.
///
/// # Examples
///
/// ```
/// use ndft_sim::config::SystemConfig;
/// use ndft_sim::noc::MeshNoc;
///
/// let mut noc = MeshNoc::new(SystemConfig::paper_table3().mesh);
/// let t = noc.transfer(0, 15, 4096, 0);
/// assert_eq!(t.hops, 6); // corner to corner of a 4×4 mesh
/// assert!(t.latency() > 6 * 3); // hop latency plus serialization
/// ```
#[derive(Debug, Clone)]
pub struct MeshNoc {
    cfg: MeshConfig,
    topology: Topology,
    /// Next-free cycle per directed link (from, to).
    link_free: HashMap<(usize, usize), u64>,
    stats: NocStats,
}

impl MeshNoc {
    /// Creates an idle mesh (the paper's topology).
    pub fn new(cfg: MeshConfig) -> Self {
        MeshNoc::with_topology(cfg, Topology::Mesh)
    }

    /// Creates an idle interconnect with an explicit topology.
    pub fn with_topology(cfg: MeshConfig, topology: Topology) -> Self {
        MeshNoc {
            cfg,
            topology,
            link_free: HashMap::new(),
            stats: NocStats::default(),
        }
    }

    /// Active topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Mesh configuration.
    pub fn config(&self) -> MeshConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> NocStats {
        self.stats
    }

    /// Clears link occupancy and statistics.
    pub fn reset(&mut self) {
        self.link_free.clear();
        self.stats = NocStats::default();
    }

    /// Route between two stacks as a list of stack ids (topology-aware:
    /// XY for mesh, shortest-direction per dimension for torus, shortest
    /// arc for ring).
    ///
    /// # Panics
    ///
    /// Panics if either stack id is out of range.
    pub fn route(&self, from: usize, to: usize) -> Vec<usize> {
        let stacks = self.cfg.stacks();
        assert!(from < stacks && to < stacks, "stack id out of range");
        match self.topology {
            Topology::Mesh => self.route_mesh(from, to),
            Topology::Torus => self.route_torus(from, to),
            Topology::Ring => self.route_ring(from, to),
        }
    }

    fn route_mesh(&self, from: usize, to: usize) -> Vec<usize> {
        let w = self.cfg.width;
        let (mut x, mut y) = (from % w, from / w);
        let (tx, ty) = (to % w, to / w);
        let mut path = vec![from];
        while x != tx {
            x = if x < tx { x + 1 } else { x - 1 };
            path.push(y * w + x);
        }
        while y != ty {
            y = if y < ty { y + 1 } else { y - 1 };
            path.push(y * w + x);
        }
        path
    }

    fn route_torus(&self, from: usize, to: usize) -> Vec<usize> {
        let w = self.cfg.width;
        let h = self.cfg.height;
        let (mut x, mut y) = (from % w, from / w);
        let (tx, ty) = (to % w, to / w);
        let mut path = vec![from];
        // Shortest direction along x with wrap.
        let step_to = |cur: usize, target: usize, n: usize| -> isize {
            let fwd = (target + n - cur) % n;
            let back = (cur + n - target) % n;
            if fwd == 0 {
                0
            } else if fwd <= back {
                1
            } else {
                -1
            }
        };
        while x != tx {
            let d = step_to(x, tx, w);
            x = ((x as isize + d).rem_euclid(w as isize)) as usize;
            path.push(y * w + x);
        }
        while y != ty {
            let d = step_to(y, ty, h);
            y = ((y as isize + d).rem_euclid(h as isize)) as usize;
            path.push(y * w + x);
        }
        path
    }

    fn route_ring(&self, from: usize, to: usize) -> Vec<usize> {
        let n = self.cfg.stacks();
        let fwd = (to + n - from) % n;
        let back = (from + n - to) % n;
        let step: isize = if fwd == 0 {
            0
        } else if fwd <= back {
            1
        } else {
            -1
        };
        let mut path = vec![from];
        let mut cur = from as isize;
        while cur as usize != to {
            cur = (cur + step).rem_euclid(n as isize);
            path.push(cur as usize);
        }
        path
    }

    /// Sends `bytes` from stack `from` to stack `to`, injecting at cycle
    /// `start`. Returns the completion record; link state is updated so
    /// later transfers see the contention.
    ///
    /// Routing is wormhole-style: the head flit advances one hop per
    /// `hop_latency` while the body streams behind it, so a multi-hop
    /// message pays serialization once (on its slowest contended link),
    /// not once per hop.
    ///
    /// A zero-hop (local) transfer completes immediately at `start`.
    ///
    /// # Panics
    ///
    /// Panics if either stack id is out of range.
    pub fn transfer(&mut self, from: usize, to: usize, bytes: u64, start: u64) -> Transfer {
        let path = self.route(from, to);
        let hops = (path.len() - 1) as u64;
        let ser = bytes.div_ceil(self.cfg.link_bytes_per_cycle as u64);
        // Head-flit arrival time at the current hop.
        let mut head = start;
        let mut done = start;
        for pair in path.windows(2) {
            let link = (pair[0], pair[1]);
            let free = self.link_free.entry(link).or_insert(0);
            // The body occupies the link for `ser` cycles from when the
            // head wins arbitration.
            let begin = head.max(*free);
            *free = begin + ser;
            head = begin + self.cfg.hop_latency;
            done = begin + self.cfg.hop_latency + ser;
        }
        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.hops += hops;
        self.stats.total_latency += done - start;
        Transfer { start, done, hops }
    }

    /// Broadcast from one stack to all others (naive unicast fan-out, the
    /// way a comm-arbiter would implement `NDFT_Broadcast` without
    /// hardware multicast). Returns the last completion.
    pub fn broadcast(&mut self, from: usize, bytes: u64, start: u64) -> Transfer {
        let mut worst = Transfer {
            start,
            done: start,
            hops: 0,
        };
        for to in 0..self.cfg.stacks() {
            if to == from {
                continue;
            }
            let t = self.transfer(from, to, bytes, start);
            if t.done > worst.done {
                worst = t;
            }
        }
        worst
    }

    /// Effective bandwidth of a bulk transfer in bytes/s, given the mesh
    /// clock.
    pub fn effective_bandwidth(&mut self, from: usize, to: usize, bytes: u64) -> f64 {
        self.reset();
        let t = self.transfer(from, to, bytes, 0);
        if t.done == t.start {
            return f64::INFINITY;
        }
        bytes as f64 / ((t.done - t.start) as f64 / self.cfg.clock_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn mesh() -> MeshNoc {
        MeshNoc::new(SystemConfig::paper_table3().mesh)
    }

    #[test]
    fn route_is_manhattan_xy() {
        let noc = mesh();
        let p = noc.route(0, 15);
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&15));
        assert_eq!(p.len(), 7); // 6 hops
                                // X-first: 0 → 1 → 2 → 3 → 7 → 11 → 15
        assert_eq!(p, vec![0, 1, 2, 3, 7, 11, 15]);
    }

    #[test]
    fn local_transfer_is_free() {
        let mut noc = mesh();
        let t = noc.transfer(5, 5, 1 << 20, 100);
        assert_eq!(t.done, 100);
        assert_eq!(t.hops, 0);
    }

    #[test]
    fn farther_destinations_take_longer() {
        let mut noc = mesh();
        let near = noc.transfer(0, 1, 1024, 0).latency();
        noc.reset();
        let far = noc.transfer(0, 15, 1024, 0).latency();
        assert!(far > near);
    }

    #[test]
    fn contention_delays_second_flow() {
        let mut noc = mesh();
        let first = noc.transfer(0, 3, 1 << 16, 0);
        // Same path, same start: must queue behind the first message.
        let second = noc.transfer(0, 3, 1 << 16, 0);
        assert!(second.done > first.done);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut noc = mesh();
        let a = noc.transfer(0, 1, 1 << 16, 0);
        let b = noc.transfer(14, 15, 1 << 16, 0);
        assert_eq!(a.latency(), b.latency());
    }

    #[test]
    fn broadcast_reaches_all_and_is_bounded_by_farthest() {
        let mut noc = mesh();
        let t = noc.broadcast(0, 4096, 0);
        assert_eq!(noc.stats().messages, 15);
        assert!(t.hops >= 6);
    }

    #[test]
    fn bulk_bandwidth_approaches_link_rate() {
        let mut noc = mesh();
        // 1-hop bulk transfer: serialization dominates, so effective
        // bandwidth approaches link_bytes_per_cycle × clock = 32 GB/s.
        let bw = noc.effective_bandwidth(0, 1, 1 << 24);
        let link = 16.0 * 2.0e9;
        assert!(bw > 0.9 * link && bw <= link * 1.001, "bw = {bw:.3e}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_stack_panics() {
        let mut noc = mesh();
        let _ = noc.transfer(0, 16, 64, 0);
    }

    #[test]
    fn torus_wraps_around_edges() {
        let cfg = SystemConfig::paper_table3().mesh;
        let torus = MeshNoc::with_topology(cfg, Topology::Torus);
        // Stack 0 → stack 3 (same row): mesh needs 3 hops, torus wraps in 1.
        assert_eq!(torus.route(0, 3).len() - 1, 1);
        let mesh = MeshNoc::new(cfg);
        assert_eq!(mesh.route(0, 3).len() - 1, 3);
        // Corner to corner: torus 2 hops (wrap both dims), mesh 6.
        assert_eq!(torus.route(0, 15).len() - 1, 2);
    }

    #[test]
    fn ring_takes_shortest_arc() {
        let cfg = SystemConfig::paper_table3().mesh;
        let ring = MeshNoc::with_topology(cfg, Topology::Ring);
        assert_eq!(ring.route(0, 4).len() - 1, 4);
        // 0 → 13 backwards is 3 hops (16-stack ring).
        assert_eq!(ring.route(0, 13).len() - 1, 3);
    }

    #[test]
    fn routes_are_valid_paths_in_all_topologies() {
        let cfg = SystemConfig::paper_table3().mesh;
        for topo in [Topology::Mesh, Topology::Torus, Topology::Ring] {
            let noc = MeshNoc::with_topology(cfg, topo);
            for from in 0..16 {
                for to in 0..16 {
                    let path = noc.route(from, to);
                    assert_eq!(path.first(), Some(&from), "{topo:?}");
                    assert_eq!(path.last(), Some(&to), "{topo:?}");
                    assert!(path.len() <= 16, "{topo:?} path too long");
                }
            }
        }
    }

    #[test]
    fn torus_average_distance_beats_mesh() {
        let cfg = SystemConfig::paper_table3().mesh;
        let sum_hops = |topo: Topology| -> usize {
            let noc = MeshNoc::with_topology(cfg, topo);
            (0..16)
                .flat_map(|f| (0..16).map(move |t| (f, t)))
                .map(|(f, t)| noc.route(f, t).len() - 1)
                .sum()
        };
        assert!(sum_hops(Topology::Torus) < sum_hops(Topology::Mesh));
        assert!(sum_hops(Topology::Mesh) < sum_hops(Topology::Ring));
    }
}
