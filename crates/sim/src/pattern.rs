//! Synthetic memory access pattern generators.
//!
//! The LR-TDDFT kernels are characterized by their dominant access
//! patterns: FFTs stream then stride (the transpose passes), the
//! face-splitting product streams, GEMM blocks and streams panels, and
//! `MPI_Alltoall` produces scattered remote traffic. These generators
//! replay equivalent address streams through the simulated memory system
//! so effective bandwidth can be *measured* rather than assumed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The dominant spatial access pattern of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Dense unit-stride streaming (face-splitting product, FFT x-lines,
    /// GEMM panel loads).
    Stream,
    /// Fixed-stride walks, e.g. FFT y/z-lines across a row-major grid.
    Strided {
        /// Distance between successive accesses in bytes.
        stride_bytes: usize,
    },
    /// Uniform random accesses over a working set (hash-style gathers,
    /// all-to-all bucket scatters).
    Random {
        /// Size of the region the accesses land in.
        range_bytes: u64,
    },
}

impl AccessPattern {
    /// Short human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            AccessPattern::Stream => "stream",
            AccessPattern::Strided { .. } => "strided",
            AccessPattern::Random { .. } => "random",
        }
    }
}

/// Generates `count` byte addresses following the pattern, starting at
/// `base`. Addresses are *access* addresses; the memory model coalesces
/// them to line/burst granularity.
///
/// # Examples
///
/// ```
/// use ndft_sim::pattern::{generate, AccessPattern};
/// let addrs = generate(AccessPattern::Stream, 4, 0x1000, 64, 42);
/// assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10c0]);
/// ```
pub fn generate(
    pattern: AccessPattern,
    count: usize,
    base: u64,
    granule_bytes: usize,
    seed: u64,
) -> Vec<u64> {
    match pattern {
        AccessPattern::Stream => (0..count as u64)
            .map(|i| base + i * granule_bytes as u64)
            .collect(),
        AccessPattern::Strided { stride_bytes } => (0..count as u64)
            .map(|i| base + i * stride_bytes as u64)
            .collect(),
        AccessPattern::Random { range_bytes } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let slots = (range_bytes / granule_bytes as u64).max(1);
            (0..count)
                .map(|_| base + rng.gen_range(0..slots) * granule_bytes as u64)
                .collect()
        }
    }
}

/// Coalesces an access stream to line-granularity unique-per-consecutive
/// requests: consecutive accesses that fall into the same line produce one
/// memory request (the way a miss-status-holding register would merge
/// them).
pub fn coalesce_to_lines(addrs: &[u64], line_bytes: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(addrs.len());
    let mut last_line = u64::MAX;
    for &a in addrs {
        let line = a / line_bytes as u64;
        if line != last_line {
            out.push(line * line_bytes as u64);
            last_line = line;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_dense() {
        let a = generate(AccessPattern::Stream, 8, 0, 64, 0);
        for (i, addr) in a.iter().enumerate() {
            assert_eq!(*addr, i as u64 * 64);
        }
    }

    #[test]
    fn strided_honors_stride() {
        let a = generate(AccessPattern::Strided { stride_bytes: 4096 }, 4, 100, 64, 0);
        assert_eq!(a, vec![100, 4196, 8292, 12388]);
    }

    #[test]
    fn random_stays_in_range() {
        let range = 1 << 20;
        let a = generate(AccessPattern::Random { range_bytes: range }, 1000, 0, 64, 7);
        assert!(a.iter().all(|&x| x < range));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = AccessPattern::Random {
            range_bytes: 1 << 20,
        };
        assert_eq!(generate(p, 100, 0, 64, 1), generate(p, 100, 0, 64, 1));
        assert_ne!(generate(p, 100, 0, 64, 1), generate(p, 100, 0, 64, 2));
    }

    #[test]
    fn coalescing_merges_sub_line_accesses() {
        // 8-byte accesses within 64-byte lines: 8 accesses → 1 request.
        let addrs: Vec<u64> = (0..16).map(|i| i * 8).collect();
        let lines = coalesce_to_lines(&addrs, 64);
        assert_eq!(lines, vec![0, 64]);
    }

    #[test]
    fn coalescing_keeps_strided_requests() {
        let addrs: Vec<u64> = (0..4).map(|i| i * 4096).collect();
        let lines = coalesce_to_lines(&addrs, 64);
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AccessPattern::Stream.label(), "stream");
        assert_eq!(
            AccessPattern::Strided { stride_bytes: 64 }.label(),
            "strided"
        );
        assert_eq!(AccessPattern::Random { range_bytes: 1 }.label(), "random");
    }
}
