//! Scratchpad memory (SPM) model for the stack logic layer.
//!
//! §IV-C of the paper places a software-managed scratchpad in each stack's
//! logic layer to hold shared pseudopotential blocks. Unlike a cache, an
//! SPM is explicitly allocated; this model provides a first-fit allocator
//! with capacity accounting and a fixed access latency, plus per-stack
//! occupancy statistics used by the footprint study.

use crate::config::SpmConfig;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Handle to an SPM allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpmHandle {
    /// Base offset within the scratchpad.
    pub offset: usize,
    /// Allocation size in bytes.
    pub len: usize,
}

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpmError {
    /// Not enough contiguous free space.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Largest free fragment available.
        largest_free: usize,
    },
    /// Freed a handle that was not live.
    InvalidFree,
}

impl fmt::Display for SpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmError::OutOfMemory { requested, largest_free } => write!(
                f,
                "scratchpad out of memory: requested {requested} B, largest free fragment {largest_free} B"
            ),
            SpmError::InvalidFree => write!(f, "freed an allocation that was not live"),
        }
    }
}

impl Error for SpmError {}

/// One stack's scratchpad.
///
/// # Examples
///
/// ```
/// use ndft_sim::spm::Scratchpad;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut spm = Scratchpad::new(1024, 2);
/// let block = spm.alloc(256)?;
/// assert_eq!(spm.used(), 256);
/// spm.free(block)?;
/// assert_eq!(spm.used(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    capacity: usize,
    access_latency: u64,
    /// Live allocations keyed by offset.
    live: BTreeMap<usize, usize>,
    peak_used: usize,
    reads: u64,
    writes: u64,
}

impl Scratchpad {
    /// Creates an empty scratchpad of `capacity` bytes with the given
    /// access latency (in core cycles).
    pub fn new(capacity: usize, access_latency: u64) -> Self {
        Scratchpad {
            capacity,
            access_latency,
            live: BTreeMap::new(),
            peak_used: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Builds a per-stack scratchpad from the system configuration.
    pub fn from_config(cfg: &SpmConfig) -> Self {
        Scratchpad::new(cfg.per_stack_bytes, cfg.access_latency)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.live.values().sum()
    }

    /// High-water mark of [`Self::used`].
    pub fn peak_used(&self) -> usize {
        self.peak_used
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> usize {
        self.capacity - self.used()
    }

    /// Access latency in cycles.
    pub fn access_latency(&self) -> u64 {
        self.access_latency
    }

    /// Reads performed (for stats).
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes performed (for stats).
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Largest contiguous free fragment.
    pub fn largest_free_fragment(&self) -> usize {
        let mut cursor = 0usize;
        let mut largest = 0usize;
        for (&off, &len) in &self.live {
            largest = largest.max(off - cursor);
            cursor = off + len;
        }
        largest.max(self.capacity - cursor)
    }

    /// Allocates `len` bytes, first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`SpmError::OutOfMemory`] when no contiguous fragment fits.
    pub fn alloc(&mut self, len: usize) -> Result<SpmHandle, SpmError> {
        if len == 0 {
            return Ok(SpmHandle { offset: 0, len: 0 });
        }
        let mut cursor = 0usize;
        for (&off, &alen) in &self.live {
            if off - cursor >= len {
                break;
            }
            cursor = off + alen;
        }
        if self.capacity - cursor < len {
            return Err(SpmError::OutOfMemory {
                requested: len,
                largest_free: self.largest_free_fragment(),
            });
        }
        self.live.insert(cursor, len);
        self.peak_used = self.peak_used.max(self.used());
        Ok(SpmHandle {
            offset: cursor,
            len,
        })
    }

    /// Frees a previous allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SpmError::InvalidFree`] if the handle is not live.
    pub fn free(&mut self, handle: SpmHandle) -> Result<(), SpmError> {
        if handle.len == 0 {
            return Ok(());
        }
        match self.live.remove(&handle.offset) {
            Some(len) if len == handle.len => Ok(()),
            Some(len) => {
                // Size mismatch: restore and report.
                self.live.insert(handle.offset, len);
                Err(SpmError::InvalidFree)
            }
            None => Err(SpmError::InvalidFree),
        }
    }

    /// Records a read of `bytes` and returns the latency in cycles
    /// (fixed latency — an SPM has no misses).
    pub fn read(&mut self, _handle: SpmHandle, bytes: usize) -> u64 {
        self.reads += 1;
        let _ = bytes;
        self.access_latency
    }

    /// Records a write of `bytes` and returns the latency in cycles.
    pub fn write(&mut self, _handle: SpmHandle, bytes: usize) -> u64 {
        self.writes += 1;
        let _ = bytes;
        self.access_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut spm = Scratchpad::new(1024, 2);
        let a = spm.alloc(100).unwrap();
        let b = spm.alloc(200).unwrap();
        assert_eq!(spm.used(), 300);
        spm.free(a).unwrap();
        assert_eq!(spm.used(), 200);
        spm.free(b).unwrap();
        assert_eq!(spm.used(), 0);
        assert_eq!(spm.peak_used(), 300);
    }

    #[test]
    fn first_fit_reuses_freed_hole() {
        let mut spm = Scratchpad::new(1024, 2);
        let a = spm.alloc(256).unwrap();
        let _b = spm.alloc(256).unwrap();
        spm.free(a).unwrap();
        let c = spm.alloc(128).unwrap();
        assert_eq!(c.offset, 0, "first-fit should reuse the hole at 0");
    }

    #[test]
    fn out_of_memory_reports_largest_fragment() {
        let mut spm = Scratchpad::new(512, 2);
        let _a = spm.alloc(512).unwrap();
        match spm.alloc(1) {
            Err(SpmError::OutOfMemory {
                requested,
                largest_free,
            }) => {
                assert_eq!(requested, 1);
                assert_eq!(largest_free, 0);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn fragmentation_can_fail_despite_total_space() {
        let mut spm = Scratchpad::new(300, 2);
        let a = spm.alloc(100).unwrap();
        let _b = spm.alloc(100).unwrap();
        let c = spm.alloc(100).unwrap();
        spm.free(a).unwrap();
        spm.free(c).unwrap();
        // 200 B free but split 100 + 100.
        assert!(spm.alloc(150).is_err());
        assert_eq!(spm.largest_free_fragment(), 100);
    }

    #[test]
    fn double_free_rejected() {
        let mut spm = Scratchpad::new(128, 2);
        let a = spm.alloc(64).unwrap();
        spm.free(a).unwrap();
        assert_eq!(spm.free(a), Err(SpmError::InvalidFree));
    }

    #[test]
    fn zero_sized_alloc_is_trivial() {
        let mut spm = Scratchpad::new(16, 1);
        let z = spm.alloc(0).unwrap();
        assert_eq!(z.len, 0);
        spm.free(z).unwrap();
    }

    #[test]
    fn read_write_latency_is_fixed() {
        let mut spm = Scratchpad::new(128, 3);
        let a = spm.alloc(64).unwrap();
        assert_eq!(spm.read(a, 64), 3);
        assert_eq!(spm.write(a, 64), 3);
        assert_eq!(spm.reads(), 1);
        assert_eq!(spm.writes(), 1);
    }

    #[test]
    fn error_display_nonempty() {
        let e = SpmError::OutOfMemory {
            requested: 10,
            largest_free: 5,
        };
        assert!(format!("{e}").contains("10"));
    }
}
