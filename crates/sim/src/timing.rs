//! Trace-driven core timing model (the zsim-level core substrate).
//!
//! [`crate::engine::Calibration`] answers "what bandwidth does a pattern
//! sustain"; this module answers the companion microarchitectural
//! question: *how do the two core types of Table III actually spend their
//! cycles* on a given instruction mix. It models, per core:
//!
//! * a superscalar issue stage (`issue_width` ops/cycle),
//! * the data-cache stack (three levels on the host CPU, L1-only on the
//!   wimpy NDP cores),
//! * miss-status-holding registers bounding memory-level parallelism,
//! * an out-of-order window (instructions in flight past the oldest
//!   incomplete miss) — a window of 1 is an in-order, stall-on-use core,
//! * an optional next-line stream prefetcher (how in-order cores sustain
//!   streaming bandwidth), and
//! * a DRAM fill port with a latency and a bandwidth constraint.
//!
//! The output [`CoreReport`] splits cycles into issue time and memory
//! stall, which is exactly the evidence behind the paper's §III-A claim
//! that the LR-TDDFT kernels split into compute-bound and memory-bound
//! families with *different best cores*.
//!
//! ## Example
//!
//! ```
//! use ndft_sim::timing::{CoreModel, KernelTrace, MemPort};
//! use ndft_sim::{AccessPattern, SystemConfig};
//!
//! let sys = SystemConfig::paper_table3();
//! let port = MemPort { fill_latency_s: 60e-9, bandwidth_bps: 16.0e9 };
//! // A pointer-chasing mix: 1 flop per random access over 64 MiB.
//! let trace = KernelTrace::from_mix(
//!     4096,
//!     1.0,
//!     AccessPattern::Random { range_bytes: 64 << 20 },
//!     7,
//! );
//! let mut ooo = CoreModel::cpu_core(&sys.cpu, port);
//! let mut inorder = CoreModel::ndp_core(&sys.ndp, port);
//! let fast = ooo.run(&trace);
//! let slow = inorder.run(&trace);
//! // The OOO window hides miss latency that the in-order core eats.
//! assert!(fast.cycles_per_miss() < slow.cycles_per_miss());
//! ```

use crate::cache::{Cache, CacheStats};
use crate::config::{CacheConfig, CpuConfig, NdpConfig};
use crate::pattern::{generate, AccessPattern};

/// Reorder-buffer depth used for the host CPU's out-of-order cores.
/// Table III says "4-way superscalar"; the window is the standard
/// Haswell/Skylake-class depth zsim would model for such a core.
pub const CPU_ROB_WINDOW: usize = 192;

/// Next-line prefetch degree of the NDP cores' L1 stream prefetcher.
pub const NDP_PREFETCH_DEGREE: usize = 4;

/// Capacity of the prefetch buffer in lines.
const PREFETCH_BUFFER_LINES: usize = 64;

/// One micro-operation of a kernel trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// `ops` independent arithmetic instructions (issue-width limited).
    Compute {
        /// Number of back-to-back arithmetic instructions.
        ops: u32,
    },
    /// A load from a byte address.
    Load {
        /// Byte address.
        addr: u64,
    },
    /// A store to a byte address.
    Store {
        /// Byte address.
        addr: u64,
    },
}

/// A synthetic instruction stream standing in for one kernel's inner loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTrace {
    ops: Vec<MicroOp>,
}

impl KernelTrace {
    /// Wraps an explicit op sequence.
    pub fn new(ops: Vec<MicroOp>) -> Self {
        KernelTrace { ops }
    }

    /// Builds the canonical kernel shape: `n_mem` memory accesses in the
    /// given [`AccessPattern`], each followed by `flops_per_access`
    /// arithmetic instructions (rounded to the nearest whole op).
    ///
    /// Accesses are 8-byte (one `f64`) at stream granularity; the cache
    /// stack coalesces them to lines. Deterministic for a given `seed`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ndft_sim::timing::KernelTrace;
    /// use ndft_sim::AccessPattern;
    ///
    /// let t = KernelTrace::from_mix(16, 2.0, AccessPattern::Stream, 1);
    /// assert_eq!(t.memory_ops(), 16);
    /// assert_eq!(t.instructions(), 16 + 32);
    /// ```
    pub fn from_mix(
        n_mem: usize,
        flops_per_access: f64,
        pattern: AccessPattern,
        seed: u64,
    ) -> Self {
        let addrs = generate(pattern, n_mem, 0, 8, seed);
        let flops = flops_per_access.round().max(0.0) as u32;
        let mut ops = Vec::with_capacity(if flops > 0 { 2 * n_mem } else { n_mem });
        for addr in addrs {
            ops.push(MicroOp::Load { addr });
            if flops > 0 {
                ops.push(MicroOp::Compute { ops: flops });
            }
        }
        KernelTrace { ops }
    }

    /// The op sequence.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of loads and stores.
    pub fn memory_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, MicroOp::Load { .. } | MicroOp::Store { .. }))
            .count()
    }

    /// Total instruction count (each `Compute { ops }` counts `ops`).
    pub fn instructions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                MicroOp::Compute { ops } => u64::from(*ops),
                _ => 1,
            })
            .sum()
    }
}

/// The DRAM side of the core model: what a fill costs and how fast fills
/// can be delivered to this core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemPort {
    /// Unloaded fill latency in seconds (row activation + CAS + transit).
    pub fill_latency_s: f64,
    /// This core's share of sustained fill bandwidth, bytes/second.
    pub bandwidth_bps: f64,
}

/// Microarchitectural parameters of one simulated core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreTimingConfig {
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Instructions issued per cycle at peak.
    pub issue_width: usize,
    /// Maximum outstanding demand misses (MSHRs).
    pub mshrs: usize,
    /// Instructions that may issue past the oldest incomplete miss.
    /// 1 models an in-order, stall-on-use core.
    pub window: usize,
    /// Next-line prefetch degree (0 disables the prefetcher).
    pub prefetch_degree: usize,
    /// DRAM fill latency in core cycles.
    pub fill_latency: f64,
    /// Minimum core cycles between successive fills (line / bandwidth).
    pub fill_interval: f64,
}

/// Where the cycles of a trace went.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreReport {
    /// Total core cycles to retire the trace (including drain).
    pub cycles: f64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles the front end spent issuing (`instructions / issue_width`).
    pub issue_cycles: f64,
    /// Cycles lost waiting on memory (window, MSHR, and drain stalls).
    pub mem_stall_cycles: f64,
    /// Demand fills that went to DRAM.
    pub dram_fills: u64,
    /// Prefetched lines consumed by demand accesses.
    pub prefetch_hits: u64,
    /// Lines fetched by the prefetcher (useful or not).
    pub prefetch_issued: u64,
    /// L1 statistics snapshot after the run.
    pub l1: CacheStats,
}

impl CoreReport {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Wall-clock seconds at the given core clock.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles / clock_hz
    }

    /// Average cycles per DRAM fill — the latency the core actually
    /// *exposed* per miss after overlap (∞-free when there were no fills).
    pub fn cycles_per_miss(&self) -> f64 {
        if self.dram_fills == 0 {
            0.0
        } else {
            self.cycles / self.dram_fills as f64
        }
    }

    /// Fraction of time stalled on memory.
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.mem_stall_cycles / self.cycles
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Miss {
    complete: f64,
    issued_at_instr: u64,
    /// Demand misses hold an MSHR; window-tracked prefetch waits do not.
    holds_mshr: bool,
}

/// One simulated core: an issue stage over a cache stack over a DRAM port.
///
/// Construct with [`CoreModel::cpu_core`] / [`CoreModel::ndp_core`] (the
/// Table III cores) or [`CoreModel::with_config`] for design-space
/// studies, then [`run`](CoreModel::run) traces against it. State (cache
/// contents) persists across runs so warm-cache behaviour can be measured;
/// call [`reset`](CoreModel::reset) for a cold start.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: CoreTimingConfig,
    levels: Vec<Cache>,
    prefetch: Vec<(u64, f64)>, // (line address, completion time)
}

impl CoreModel {
    /// A host-CPU core of the Table III machine: three cache levels, a
    /// deep out-of-order window, no prefetcher (the window is the latency
    /// tolerance mechanism).
    pub fn cpu_core(cpu: &CpuConfig, port: MemPort) -> Self {
        let cfg = CoreTimingConfig {
            clock_hz: cpu.clock_hz,
            issue_width: cpu.issue_width,
            mshrs: cpu.mlp,
            window: CPU_ROB_WINDOW,
            prefetch_degree: 0,
            fill_latency: port.fill_latency_s * cpu.clock_hz,
            fill_interval: cpu.l1d.line_bytes as f64 / port.bandwidth_bps * cpu.clock_hz,
        };
        CoreModel::build(cfg, vec![cpu.l1d, cpu.l2, cpu.l3])
    }

    /// A wimpy NDP core: single-issue-narrow, L1 only, in-order
    /// (window 1), with a next-line stream prefetcher — the configuration
    /// that lets it stream at stack bandwidth yet collapse on irregular
    /// kernels.
    pub fn ndp_core(ndp: &NdpConfig, port: MemPort) -> Self {
        let cfg = CoreTimingConfig {
            clock_hz: ndp.clock_hz,
            issue_width: 2,
            mshrs: ndp.mlp,
            window: 1,
            prefetch_degree: NDP_PREFETCH_DEGREE,
            fill_latency: port.fill_latency_s * ndp.clock_hz,
            fill_interval: ndp.l1.line_bytes as f64 / port.bandwidth_bps * ndp.clock_hz,
        };
        CoreModel::build(cfg, vec![ndp.l1])
    }

    /// Builds a core with an explicit configuration and cache stack
    /// (outermost last).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or `issue_width`/`mshrs`/`window` is 0.
    pub fn with_config(cfg: CoreTimingConfig, levels: Vec<CacheConfig>) -> Self {
        CoreModel::build(cfg, levels)
    }

    fn build(cfg: CoreTimingConfig, levels: Vec<CacheConfig>) -> Self {
        assert!(!levels.is_empty(), "core needs at least one cache level");
        assert!(
            cfg.issue_width > 0 && cfg.mshrs > 0 && cfg.window > 0,
            "issue width, MSHR count and window must be positive"
        );
        CoreModel {
            cfg,
            levels: levels.into_iter().map(Cache::new).collect(),
            prefetch: Vec::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> CoreTimingConfig {
        self.cfg
    }

    /// Line size of the innermost cache.
    pub fn line_bytes(&self) -> usize {
        self.levels[0].config().line_bytes
    }

    /// Clears caches and the prefetch buffer (cold start).
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            level.reset();
        }
        self.prefetch.clear();
    }

    /// Runs a trace to completion and reports where the cycles went.
    ///
    /// Cache state persists across calls; run the same trace twice to see
    /// warm-cache behaviour.
    pub fn run(&mut self, trace: &KernelTrace) -> CoreReport {
        let cfg = self.cfg;
        let line_bytes = self.line_bytes() as u64;
        let mut now = 0.0f64;
        let mut stall = 0.0f64;
        let mut instr: u64 = 0;
        let mut misses: Vec<Miss> = Vec::new();
        let mut last_fill = f64::NEG_INFINITY;
        let mut report = CoreReport::default();

        for op in trace.ops() {
            // Retire completed misses.
            misses.retain(|m| m.complete > now);
            // Window constraint: the oldest incomplete miss bounds how far
            // ahead the front end may run.
            if let Some(oldest) = misses
                .iter()
                .filter(|m| instr.saturating_sub(m.issued_at_instr) >= cfg.window as u64)
                .map(|m| m.complete)
                .fold(None, |acc: Option<f64>, c| {
                    Some(acc.map_or(c, |a| a.max(c)))
                })
            {
                if oldest > now {
                    stall += oldest - now;
                    now = oldest;
                    misses.retain(|m| m.complete > now);
                }
            }
            match *op {
                MicroOp::Compute { ops } => {
                    instr += u64::from(ops);
                    now += f64::from(ops) / cfg.issue_width as f64;
                }
                MicroOp::Load { addr } | MicroOp::Store { addr } => {
                    let is_write = matches!(op, MicroOp::Store { .. });
                    instr += 1;
                    now += 1.0 / cfg.issue_width as f64;
                    let line = addr / line_bytes;
                    if let Some(pos) = self.prefetch.iter().position(|&(l, _)| l == line) {
                        // Prefetch buffer hit: install into L1; if the
                        // prefetch is still in flight, it behaves like a
                        // shorter miss tracked by the window.
                        let (_, complete) = self.prefetch.swap_remove(pos);
                        self.levels[0].fill(addr, is_write);
                        report.prefetch_hits += 1;
                        if complete > now {
                            misses.push(Miss {
                                complete,
                                issued_at_instr: instr,
                                holds_mshr: false,
                            });
                        }
                        continue;
                    }
                    // Walk the cache stack.
                    let mut hit_level = None;
                    for (i, level) in self.levels.iter_mut().enumerate() {
                        match level.access(addr, is_write && i == 0) {
                            crate::cache::CacheOutcome::Hit => {
                                hit_level = Some(i);
                                break;
                            }
                            crate::cache::CacheOutcome::Miss { .. } => {}
                        }
                    }
                    match hit_level {
                        Some(0) => {} // pipelined L1 hit
                        Some(i) => {
                            // Outer-level hit: a short miss the window and
                            // scoreboard must cover, but no DRAM fill.
                            let latency: u64 = self.levels[1..=i]
                                .iter()
                                .map(|l| l.config().hit_latency)
                                .sum();
                            misses.push(Miss {
                                complete: now + latency as f64,
                                issued_at_instr: instr,
                                holds_mshr: false,
                            });
                        }
                        None => {
                            // DRAM fill. MSHR constraint: wait for the
                            // earliest demand miss to drain if all MSHRs
                            // are busy.
                            loop {
                                let demand = misses.iter().filter(|m| m.holds_mshr).count();
                                if demand < cfg.mshrs {
                                    break;
                                }
                                let earliest = misses
                                    .iter()
                                    .filter(|m| m.holds_mshr)
                                    .map(|m| m.complete)
                                    .fold(f64::INFINITY, f64::min);
                                if earliest > now {
                                    stall += earliest - now;
                                    now = earliest;
                                }
                                misses.retain(|m| m.complete > now);
                            }
                            let issue_at = now.max(last_fill + cfg.fill_interval);
                            last_fill = issue_at;
                            let complete = issue_at + cfg.fill_latency;
                            misses.push(Miss {
                                complete,
                                issued_at_instr: instr,
                                holds_mshr: true,
                            });
                            report.dram_fills += 1;
                            // Next-line prefetches ride the same fill port.
                            for d in 1..=cfg.prefetch_degree as u64 {
                                let pl = line + d;
                                if self.prefetch.iter().any(|&(l, _)| l == pl) {
                                    continue;
                                }
                                let pf_issue = last_fill + cfg.fill_interval;
                                last_fill = pf_issue;
                                if self.prefetch.len() >= PREFETCH_BUFFER_LINES {
                                    self.prefetch.remove(0);
                                }
                                self.prefetch.push((pl, pf_issue + cfg.fill_latency));
                                report.prefetch_issued += 1;
                            }
                        }
                    }
                }
            }
        }
        // Drain: the trace is not done until the last miss lands.
        let drain = misses.iter().map(|m| m.complete).fold(now, f64::max);
        stall += drain - now;
        report.cycles = drain;
        report.instructions = instr;
        report.issue_cycles = instr as f64 / cfg.issue_width as f64;
        report.mem_stall_cycles = stall;
        report.l1 = self.levels[0].stats();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn port() -> MemPort {
        MemPort {
            fill_latency_s: 60e-9,
            bandwidth_bps: 16.0e9,
        }
    }

    fn cpu() -> CoreModel {
        CoreModel::cpu_core(&SystemConfig::paper_table3().cpu, port())
    }

    fn ndp() -> CoreModel {
        CoreModel::ndp_core(&SystemConfig::paper_table3().ndp, port())
    }

    #[test]
    fn compute_only_trace_runs_at_issue_width() {
        let mut core = cpu();
        let trace = KernelTrace::new(vec![MicroOp::Compute { ops: 4000 }]);
        let r = core.run(&trace);
        assert_eq!(r.instructions, 4000);
        assert!((r.ipc() - 4.0).abs() < 1e-9, "ipc {}", r.ipc());
        assert_eq!(r.dram_fills, 0);
        assert_eq!(r.mem_stall_cycles, 0.0);
    }

    #[test]
    fn ooo_window_hides_latency_that_inorder_eats() {
        let trace = KernelTrace::from_mix(
            2048,
            1.0,
            AccessPattern::Random {
                range_bytes: 256 << 20,
            },
            11,
        );
        let fast = cpu().run(&trace);
        let mut ndp_no_pf = ndp();
        // Disable the prefetcher for a pure window comparison.
        let mut cfg = ndp_no_pf.config();
        cfg.prefetch_degree = 0;
        // Same clock so cycles are comparable.
        cfg.clock_hz = 3.0e9;
        cfg.fill_latency = port().fill_latency_s * 3.0e9;
        cfg.fill_interval = 64.0 / port().bandwidth_bps * 3.0e9;
        ndp_no_pf = CoreModel::with_config(cfg, vec![SystemConfig::paper_table3().ndp.l1]);
        let slow = ndp_no_pf.run(&trace);
        assert!(
            fast.cycles * 2.0 < slow.cycles,
            "OOO {} vs in-order {}",
            fast.cycles,
            slow.cycles
        );
    }

    #[test]
    fn prefetcher_accelerates_streaming_on_inorder_core() {
        let trace = KernelTrace::from_mix(8192, 0.0, AccessPattern::Stream, 3);
        let with_pf = ndp().run(&trace);
        let mut cfg = ndp().config();
        cfg.prefetch_degree = 0;
        let mut no_pf = CoreModel::with_config(cfg, vec![SystemConfig::paper_table3().ndp.l1]);
        let without = no_pf.run(&trace);
        assert!(
            with_pf.cycles * 1.5 < without.cycles,
            "prefetch {} vs none {}",
            with_pf.cycles,
            without.cycles
        );
        assert!(with_pf.prefetch_hits > 0);
    }

    #[test]
    fn warm_cache_second_run_has_no_fills() {
        let mut core = cpu();
        // 16 KiB working set fits in the 32 KiB L1.
        let trace = KernelTrace::from_mix(
            2048,
            1.0,
            AccessPattern::Random {
                range_bytes: 16 << 10,
            },
            5,
        );
        let cold = core.run(&trace);
        let warm = core.run(&trace);
        assert!(cold.dram_fills > 0);
        assert_eq!(warm.dram_fills, 0);
        assert!(warm.cycles < cold.cycles);
        // Warm run retires at near issue width.
        assert!(warm.ipc() > 0.9 * 4.0, "warm ipc {}", warm.ipc());
    }

    #[test]
    fn mshr_count_bounds_memory_level_parallelism() {
        let trace = KernelTrace::from_mix(
            1024,
            0.0,
            AccessPattern::Random {
                range_bytes: 256 << 20,
            },
            17,
        );
        let sys = SystemConfig::paper_table3();
        let mut wide_cfg = CoreModel::cpu_core(&sys.cpu, port()).config();
        wide_cfg.mshrs = 10;
        let mut narrow_cfg = wide_cfg;
        narrow_cfg.mshrs = 1;
        let levels = vec![sys.cpu.l1d, sys.cpu.l2, sys.cpu.l3];
        let wide = CoreModel::with_config(wide_cfg, levels.clone()).run(&trace);
        let narrow = CoreModel::with_config(narrow_cfg, levels).run(&trace);
        // mshrs=1 serializes misses at full latency; 10 MSHRs overlap them.
        assert!(
            wide.cycles * 3.0 < narrow.cycles,
            "mshrs=10 {} vs mshrs=1 {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn fill_interval_bounds_achieved_bandwidth() {
        // Zero-latency fills: only the bandwidth constraint remains.
        let sys = SystemConfig::paper_table3();
        let mut cfg = CoreModel::cpu_core(&sys.cpu, port()).config();
        cfg.fill_latency = 0.0;
        let mut core = CoreModel::with_config(cfg, vec![sys.cpu.l1d, sys.cpu.l2, sys.cpu.l3]);
        let n = 8192;
        let trace = KernelTrace::from_mix(n, 0.0, AccessPattern::Strided { stride_bytes: 4096 }, 0);
        let r = core.run(&trace);
        let bytes = r.dram_fills as f64 * 64.0;
        let secs = r.seconds(cfg.clock_hz);
        let bw = bytes / secs;
        assert!(bw <= port().bandwidth_bps * 1.01, "bw {bw:.3e}");
        assert!(bw > port().bandwidth_bps * 0.8, "bw {bw:.3e}");
    }

    #[test]
    fn cycles_never_below_issue_time() {
        let trace = KernelTrace::from_mix(512, 4.0, AccessPattern::Stream, 9);
        for r in [cpu().run(&trace), ndp().run(&trace)] {
            assert!(r.cycles + 1e-9 >= r.issue_cycles, "{r:?}");
            assert!(r.mem_stall_cycles >= 0.0);
        }
    }

    #[test]
    fn inorder_core_stalls_on_misses() {
        let trace = KernelTrace::from_mix(
            512,
            1.0,
            AccessPattern::Random {
                range_bytes: 64 << 20,
            },
            21,
        );
        let r = ndp().run(&trace);
        assert!(
            r.mem_stall_fraction() > 0.5,
            "stall fraction {}",
            r.mem_stall_fraction()
        );
    }

    #[test]
    fn trace_mix_counts() {
        let t = KernelTrace::from_mix(10, 3.0, AccessPattern::Stream, 0);
        assert_eq!(t.memory_ops(), 10);
        assert_eq!(t.instructions(), 10 + 30);
        let explicit = KernelTrace::new(vec![
            MicroOp::Load { addr: 0 },
            MicroOp::Store { addr: 64 },
            MicroOp::Compute { ops: 7 },
        ]);
        assert_eq!(explicit.memory_ops(), 2);
        assert_eq!(explicit.instructions(), 9);
    }

    #[test]
    fn reset_restores_cold_behaviour() {
        let mut core = cpu();
        let trace = KernelTrace::from_mix(
            512,
            0.0,
            AccessPattern::Random {
                range_bytes: 16 << 10,
            },
            2,
        );
        let cold = core.run(&trace);
        core.reset();
        let again = core.run(&trace);
        assert_eq!(cold.dram_fills, again.dram_fills);
        assert!((cold.cycles - again.cycles).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one cache level")]
    fn empty_cache_stack_panics() {
        let cfg = CoreModel::cpu_core(&SystemConfig::paper_table3().cpu, port()).config();
        let _ = CoreModel::with_config(cfg, vec![]);
    }
}
