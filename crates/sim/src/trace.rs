//! Memory-trace recording and replay.
//!
//! zsim-style evaluation is trace-driven: capture an address stream once,
//! replay it against different memory-system configurations. This module
//! provides a serializable [`Trace`] container, generators from the
//! synthetic patterns, and a replay harness over [`DramModel`] — used by
//! the calibration tests to prove the simulator is deterministic and by
//! what-if studies to compare memory systems on identical traffic.

use crate::dram::{DramModel, DramStats, MemRequest};
use crate::pattern::{generate, AccessPattern};
use serde::{Deserialize, Serialize};

/// A recorded memory-request trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable provenance (pattern, kernel, …).
    pub label: String,
    /// The requests, in issue order.
    pub requests: Vec<MemRequest>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(label: impl Into<String>) -> Self {
        Trace {
            label: label.into(),
            requests: Vec::new(),
        }
    }

    /// Records a synthetic pattern as a trace (all requests arrive at 0,
    /// i.e. an open-loop saturation trace).
    pub fn from_pattern(
        pattern: AccessPattern,
        count: usize,
        granule_bytes: usize,
        seed: u64,
    ) -> Self {
        let addrs = generate(pattern, count, 0, granule_bytes, seed);
        Trace {
            label: format!("{}×{count}", pattern.label()),
            requests: addrs
                .into_iter()
                .map(|addr| MemRequest {
                    addr,
                    is_write: false,
                    arrival: 0,
                })
                .collect(),
        }
    }

    /// Appends one request.
    pub fn push(&mut self, addr: u64, is_write: bool, arrival: u64) {
        self.requests.push(MemRequest {
            addr,
            is_write,
            arrival,
        });
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total bytes the trace will move at a given burst size.
    pub fn bytes(&self, burst_bytes: usize) -> u64 {
        self.len() as u64 * burst_bytes as u64
    }

    /// Replays the trace against a DRAM model (resetting it first) and
    /// returns the service statistics.
    pub fn replay(&self, dram: &mut DramModel) -> DramStats {
        dram.reset();
        dram.service_batch(&self.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramTimings;

    fn hbm() -> DramModel {
        DramModel::new(DramTimings::hbm2(), 8, 16, 2048)
    }

    #[test]
    fn replay_is_deterministic() {
        let trace = Trace::from_pattern(
            AccessPattern::Random {
                range_bytes: 1 << 26,
            },
            4096,
            32,
            9,
        );
        let mut d = hbm();
        let a = trace.replay(&mut d);
        let b = trace.replay(&mut d);
        assert_eq!(a, b, "identical trace must produce identical stats");
    }

    #[test]
    fn same_trace_distinguishes_memory_systems() {
        let trace = Trace::from_pattern(AccessPattern::Stream, 8192, 64, 1);
        let mut hbm2 = hbm();
        let mut ddr = DramModel::new(DramTimings::ddr4(), 8, 16, 8192);
        let bw_hbm = trace
            .replay(&mut hbm2)
            .bandwidth(DramTimings::hbm2().clock_hz);
        let bw_ddr = trace
            .replay(&mut ddr)
            .bandwidth(DramTimings::ddr4().clock_hz);
        assert!(
            bw_hbm != bw_ddr,
            "different systems should behave differently"
        );
    }

    #[test]
    fn push_and_len_account() {
        let mut t = Trace::new("manual");
        assert!(t.is_empty());
        t.push(0, false, 0);
        t.push(64, true, 10);
        assert_eq!(t.len(), 2);
        assert_eq!(t.bytes(32), 64);
        assert_eq!(t.requests[1].arrival, 10);
    }

    #[test]
    fn pattern_label_is_descriptive() {
        let t = Trace::from_pattern(AccessPattern::Stream, 16, 32, 0);
        assert!(t.label.contains("stream"));
        assert!(t.label.contains("16"));
    }

    #[test]
    fn replay_resets_state_between_runs() {
        // Two replays see identical cold-start row misses.
        let trace = Trace::from_pattern(AccessPattern::Stream, 64, 32, 0);
        let mut d = hbm();
        let first = trace.replay(&mut d);
        let second = trace.replay(&mut d);
        assert_eq!(first.row_closed, second.row_closed);
    }
}
