//! Property-based tests of the architecture-simulator invariants.

use ndft_sim::{
    Cache, CacheConfig, DramModel, DramTimings, MemRequest, MeshNoc, SystemConfig, Topology,
};
use proptest::prelude::*;

fn requests(addrs: Vec<u64>) -> Vec<MemRequest> {
    addrs
        .into_iter()
        .map(|a| MemRequest {
            addr: a,
            is_write: false,
            arrival: 0,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dram_services_every_request_exactly_once(
        addrs in prop::collection::vec(0u64..(1 << 28), 1..512)
    ) {
        let mut d = DramModel::new(DramTimings::hbm2(), 8, 16, 2048);
        let stats = d.service_batch(&requests(addrs.clone()));
        prop_assert_eq!(stats.requests, addrs.len() as u64);
        prop_assert_eq!(
            stats.row_hits + stats.row_closed + stats.row_conflicts,
            addrs.len() as u64
        );
        prop_assert_eq!(stats.bytes, addrs.len() as u64 * 32);
    }

    #[test]
    fn dram_bandwidth_never_exceeds_pin_rate(
        addrs in prop::collection::vec(0u64..(1 << 28), 64..2048)
    ) {
        let t = DramTimings::hbm2();
        let mut d = DramModel::new(t, 8, 16, 2048);
        let stats = d.service_batch(&requests(addrs));
        let bw = stats.bandwidth(t.clock_hz);
        prop_assert!(bw <= 8.0 * t.channel_peak_bw() * 1.001, "bw {bw}");
    }

    #[test]
    fn dram_latency_at_least_idle_minimum(
        addrs in prop::collection::vec(0u64..(1 << 28), 1..256)
    ) {
        let t = DramTimings::hbm2();
        let mut d = DramModel::new(t, 8, 16, 2048);
        let n = addrs.len() as u64;
        let stats = d.service_batch(&requests(addrs));
        // Every request takes at least tCAS + tBURST.
        prop_assert!(stats.total_latency_cycles >= n * (t.t_cas + t.t_burst));
    }

    #[test]
    fn cache_hits_plus_cold_misses_account_for_everything(
        lines in prop::collection::vec(0u64..256, 1..2000)
    ) {
        let cfg = CacheConfig { size_bytes: 1 << 20, ways: 16, line_bytes: 64, hit_latency: 4 };
        // 256 distinct lines always fit a 16 Ki-line cache: after the cold
        // miss, every access hits.
        let mut c = Cache::new(cfg);
        let mut cold = std::collections::HashSet::new();
        let mut expected_hits = 0u64;
        for &l in &lines {
            if !cold.insert(l) {
                expected_hits += 1;
            }
            let _ = c.access(l * 64, false);
        }
        prop_assert_eq!(c.stats().hits, expected_hits);
    }

    #[test]
    fn noc_done_after_start_and_stats_consistent(
        pairs in prop::collection::vec((0usize..16, 0usize..16, 1u64..65536), 1..64)
    ) {
        for topo in [Topology::Mesh, Topology::Torus, Topology::Ring] {
            let mut noc = MeshNoc::with_topology(SystemConfig::paper_table3().mesh, topo);
            let mut bytes = 0u64;
            for &(f, t, b) in &pairs {
                let tr = noc.transfer(f, t, b, 0);
                prop_assert!(tr.done >= tr.start);
                bytes += b;
            }
            prop_assert_eq!(noc.stats().messages, pairs.len() as u64);
            prop_assert_eq!(noc.stats().bytes, bytes);
        }
    }

    #[test]
    fn noc_hops_match_route_length(from in 0usize..16, to in 0usize..16) {
        for topo in [Topology::Mesh, Topology::Torus, Topology::Ring] {
            let mut noc = MeshNoc::with_topology(SystemConfig::paper_table3().mesh, topo);
            let path = noc.route(from, to);
            let tr = noc.transfer(from, to, 64, 0);
            prop_assert_eq!(tr.hops as usize, path.len() - 1, "{:?}", topo);
        }
    }

    #[test]
    fn contention_is_monotone_in_load(
        n in 1usize..32,
        bytes in 64u64..16384
    ) {
        // Sending the same transfer repeatedly on one path: each completion
        // is no earlier than the previous.
        let mut noc = MeshNoc::new(SystemConfig::paper_table3().mesh);
        let mut last = 0;
        for _ in 0..n {
            let t = noc.transfer(0, 3, bytes, 0);
            prop_assert!(t.done >= last);
            last = t.done;
        }
    }
}

// --- Core timing model invariants. ---

mod timing_props {
    use ndft_sim::timing::{CoreModel, KernelTrace, MemPort, MicroOp};
    use ndft_sim::{AccessPattern, SystemConfig};
    use proptest::prelude::*;

    fn port() -> MemPort {
        MemPort {
            fill_latency_s: 60e-9,
            bandwidth_bps: 16.0e9,
        }
    }

    fn arb_pattern() -> impl Strategy<Value = AccessPattern> {
        prop_oneof![
            Just(AccessPattern::Stream),
            (64usize..8192).prop_map(|s| AccessPattern::Strided { stride_bytes: s }),
            (1u64 << 16..1 << 26).prop_map(|r| AccessPattern::Random { range_bytes: r }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn ipc_never_exceeds_issue_width(
            n in 16usize..2048,
            flops in 0.0f64..8.0,
            pattern in arb_pattern(),
            seed in 0u64..1000,
        ) {
            let sys = SystemConfig::paper_table3();
            let trace = KernelTrace::from_mix(n, flops, pattern, seed);
            let mut cpu = CoreModel::cpu_core(&sys.cpu, port());
            let r = cpu.run(&trace);
            prop_assert!(r.ipc() <= sys.cpu.issue_width as f64 + 1e-9, "ipc {}", r.ipc());
            prop_assert!(r.cycles + 1e-9 >= r.issue_cycles);
            prop_assert_eq!(r.instructions, trace.instructions());
        }

        #[test]
        fn fills_bounded_by_memory_ops(
            n in 16usize..2048,
            pattern in arb_pattern(),
            seed in 0u64..1000,
        ) {
            let sys = SystemConfig::paper_table3();
            let trace = KernelTrace::from_mix(n, 1.0, pattern, seed);
            let mut ndp = CoreModel::ndp_core(&sys.ndp, port());
            let r = ndp.run(&trace);
            // Demand fills cannot exceed the number of memory ops.
            prop_assert!(r.dram_fills <= trace.memory_ops() as u64);
            prop_assert!(r.prefetch_hits <= r.prefetch_issued);
        }

        #[test]
        fn runs_are_deterministic(
            n in 16usize..512,
            pattern in arb_pattern(),
            seed in 0u64..1000,
        ) {
            let sys = SystemConfig::paper_table3();
            let trace = KernelTrace::from_mix(n, 2.0, pattern, seed);
            let mut a = CoreModel::cpu_core(&sys.cpu, port());
            let mut b = CoreModel::cpu_core(&sys.cpu, port());
            prop_assert_eq!(a.run(&trace), b.run(&trace));
        }

        #[test]
        fn more_compute_never_reduces_cycles(
            n in 16usize..512,
            seed in 0u64..1000,
        ) {
            let sys = SystemConfig::paper_table3();
            let lean = KernelTrace::from_mix(n, 1.0, AccessPattern::Stream, seed);
            let fat = KernelTrace::from_mix(n, 8.0, AccessPattern::Stream, seed);
            let mut a = CoreModel::cpu_core(&sys.cpu, port());
            let mut b = CoreModel::cpu_core(&sys.cpu, port());
            let ra = a.run(&lean);
            let rb = b.run(&fat);
            prop_assert!(rb.cycles + 1e-9 >= ra.cycles);
        }

        #[test]
        fn store_only_traces_work(addrs in prop::collection::vec(0u64..(1 << 24), 1..256)) {
            let sys = SystemConfig::paper_table3();
            let ops: Vec<MicroOp> = addrs.iter().map(|&a| MicroOp::Store { addr: a }).collect();
            let trace = KernelTrace::new(ops);
            let mut core = CoreModel::cpu_core(&sys.cpu, port());
            let r = core.run(&trace);
            prop_assert_eq!(r.instructions, addrs.len() as u64);
            prop_assert!(r.cycles > 0.0);
        }
    }
}
