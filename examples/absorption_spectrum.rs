//! Absorption spectrum of a small silicon system: oscillator strengths
//! from the LR-TDDFT eigenvectors, Lorentzian-broadened into the curve a
//! spectroscopist would plot. Prints an ASCII rendition.
//!
//! Run with: `cargo run --release --example absorption_spectrum [atoms]`

use ndft::dft::{model_oscillator_spectrum, SiliconSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let atoms: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(16);
    let sys = SiliconSystem::new(atoms)?;
    println!("Computing the LR-TDDFT absorption spectrum of {sys} …\n");
    let spec = model_oscillator_spectrum(&sys)?;

    println!("Brightest excitations:");
    let mut ranked: Vec<(usize, f64)> = spec.strengths.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (idx, f) in ranked.iter().take(5) {
        println!("  ω = {:>7.4} eV   f = {:.4e}", spec.energies_ev[*idx], f);
    }

    let lo = spec.energies_ev.first().copied().unwrap_or(0.0) - 0.5;
    let hi = spec.energies_ev.last().copied().unwrap_or(10.0) + 0.5;
    let curve = spec.broadened(lo.max(0.0), hi, 48, 0.1);
    let peak = curve.iter().map(|(_, a)| *a).fold(0.0f64, f64::max);
    println!("\nBroadened spectrum (γ = 0.1 eV):");
    for (e, a) in &curve {
        let bars = if peak > 0.0 {
            (a / peak * 56.0).round() as usize
        } else {
            0
        };
        println!("{e:>7.3} eV │{}", "█".repeat(bars));
    }
    Ok(())
}
