//! What if the static code analyzer is wrong?
//!
//! NDFT's offloader (§IV-A) trusts its static estimates forever. This
//! example stresses that choice: it simulates a runtime whose true kernel
//! times deviate from the SCA's beliefs, runs the online scheduler
//! (EWMA feedback + probing + hysteresis) against the frozen static
//! plan, and also shows what changes when the objective is energy or
//! energy-delay product instead of time.
//!
//! Run with: `cargo run --release --example adaptive_scheduling`

use ndft::dft::{build_task_graph, SiliconSystem};
use ndft::sched::anneal::{plan_anneal, AnnealOptions, Objective, PowerModel};
use ndft::sched::dynamic::{simulate_online, DynamicOptions};
use ndft::sched::{plan_chain, StaticCodeAnalyzer, Target};

fn main() {
    let sca = StaticCodeAnalyzer::paper_default();
    let stages = build_task_graph(&SiliconSystem::large(), 1).stages;

    // --- 1. The static plan and its energy/EDP alternatives. ---
    let dp = plan_chain(&stages, &sca);
    println!(
        "Static DP plan (time-optimal): {:.1} ms, {} CPU↔NDP crossings",
        dp.total_time() * 1e3,
        dp.crossings()
    );
    let power = PowerModel::paper_default();
    for (label, objective) in [("energy", Objective::Energy), ("EDP", Objective::Edp)] {
        let out = plan_anneal(&stages, &sca, &power, objective, &AnnealOptions::default());
        let moved = out
            .plan
            .placement
            .iter()
            .zip(&dp.placement)
            .filter(|(a, b)| a != b)
            .count();
        println!(
            "{label}-optimal plan: {:.1} ms, {:.2} J — moves {} stage(s) vs the time plan",
            out.plan.total_time() * 1e3,
            out.energy_joules,
            moved
        );
    }

    // --- 2. Misprediction stress. ---
    println!("\nOnline scheduler vs frozen static plan (true times = SCA × lognormal bias):\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>11}",
        "σ(bias)", "static (ms)", "online (ms)", "oracle (ms)", "migrations"
    );
    for sigma in [0.0, 0.3, 0.8] {
        let mut static_t = 0.0;
        let mut online_t = 0.0;
        let mut oracle_t = 0.0;
        let mut migrations = 0;
        let seeds = 6u64;
        for seed in 0..seeds {
            let opts = DynamicOptions {
                mispredict_sigma: sigma,
                seed,
                iterations: 60,
                ..DynamicOptions::default()
            };
            let r = simulate_online(&stages, &sca, &opts);
            static_t += r.static_time;
            online_t += r.converged_time();
            oracle_t += r.oracle_time;
            migrations += r.migrations;
        }
        let n = seeds as f64;
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>11}",
            sigma,
            static_t / n * 1e3,
            online_t / n * 1e3,
            oracle_t / n * 1e3,
            migrations
        );
    }
    println!(
        "\nWith an exact SCA (σ = 0) the online layer adds only its probe\n\
         overhead and never migrates — the paper's static choice is free.\n\
         Under heavy misprediction the feedback loop claws back most of the\n\
         gap to the oracle, which bounds how much a profile-guided NDFT\n\
         could gain."
    );

    // --- 3. Where do the plans disagree? ---
    let kinds: Vec<_> = stages.iter().map(|s| format!("{:?}", s.kind)).collect();
    println!("\nStage placements (time-optimal):");
    for (kind, target) in kinds.iter().zip(&dp.placement) {
        let t = match target {
            Target::Cpu => "CPU",
            Target::Ndp => "NDP",
        };
        println!("  {kind:<24} → {t}");
    }
}
