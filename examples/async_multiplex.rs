//! Demo: 10 000 jobs multiplexed over ONE `ClientSession`.
//!
//! Four frontend threads each push 2 500 mixed jobs through a shared
//! session while the main thread drains completions in finish order
//! from the session's `CompletionStream` — the whole run uses at most
//! `workers + frontend_threads` OS threads. No thread ever parks in
//! `JobTicket::wait`; the completion forwarders ride the ticket state
//! machine's waker registry, so fulfillment *pushes* results to the
//! drainer instead of threads polling for them.
//!
//! The tail of the demo shows the other two layers of the async API:
//! ticket futures driven by the built-in `block_on`/`join_all`
//! combinators, and the live per-job progress stream (`Queued` →
//! `Planned` → `Running` → `Done`).
//!
//! Run with: `cargo run --release --example async_multiplex`

use ndft::serve::{
    block_on, join_all, DftJob, DftService, JobRequest, JobStage, Priority, ServeConfig,
};
use std::time::{Duration, Instant};

const FRONTENDS: usize = 4;
const JOBS_PER_FRONTEND: usize = 2_500;
const WORKERS: usize = 4;

/// The frontend's stream: mixed MD segments with heavy seed repetition,
/// the shape of a real client resubmitting overlapping calculations.
fn job(frontend: usize, i: usize) -> DftJob {
    let n = (frontend * JOBS_PER_FRONTEND + i) as u64;
    DftJob::MdSegment {
        atoms: if n.is_multiple_of(3) { 128 } else { 64 },
        steps: 10,
        temperature_k: 300.0,
        seed: n % 48,
    }
}

fn main() {
    let total = FRONTENDS * JOBS_PER_FRONTEND;
    let config = ServeConfig {
        workers: WORKERS,
        shards: 4,
        queue_capacity: 64,
        max_batch: 8,
        ..ServeConfig::default()
    };
    println!(
        "async multiplex demo: {FRONTENDS} frontends x {JOBS_PER_FRONTEND} jobs \
         over one ClientSession, {WORKERS} workers \
         (threads used: {} = workers + frontends; the main thread drains)",
        WORKERS + FRONTENDS
    );

    let svc = DftService::start(config);
    let progress = svc.progress();
    let (session, completions) = svc.session();
    let start = Instant::now();

    std::thread::scope(|scope| {
        for frontend in 0..FRONTENDS {
            let session = &session;
            scope.spawn(move || {
                for i in 0..JOBS_PER_FRONTEND {
                    session
                        .submit_blocking(job(frontend, i))
                        .expect("session submit");
                }
            });
        }
        // One drainer, any number of outstanding jobs: completions
        // arrive in finish order, cache serves included.
        let mut done = 0usize;
        while done < total {
            // Bounded wait so a wedged frontend panics the demo with a
            // message instead of parking this drainer forever.
            let completion = completions
                .next_timeout(Duration::from_secs(120))
                .expect("completion within timeout");
            completion.result.expect("job succeeds");
            done += 1;
            if done.is_multiple_of(2_500) {
                println!(
                    "  drained {done:>6}/{total}  in flight {:>5}  outstanding tickets {:>5}",
                    session.in_flight(),
                    svc.tickets_outstanding()
                );
            }
        }
    });
    let wall = start.elapsed().as_secs_f64();
    assert_eq!(session.completed(), total as u64);
    assert_eq!(session.in_flight(), 0);
    drop(session);

    println!(
        "\n  {total} jobs in {wall:.3}s  ({:.0} jobs/s through one session)",
        total as f64 / wall
    );

    // Layer 2: the same tickets are futures — drive a handful with the
    // built-in executor and the join_all combinator (results arrive in
    // submission order, no extra threads). These ride the interactive
    // priority lane via the JobRequest builder — a bare DftJob converts
    // implicitly and lands in the Standard lane, which is what the
    // frontend threads above did.
    let futures: Vec<_> = (0..4)
        .map(|k| {
            svc.submit(JobRequest::new(job(0, k)).priority(Priority::Interactive))
                .expect("submit")
                .future()
        })
        .collect();
    let results = block_on(join_all(futures));
    println!(
        "  join_all over {} ticket futures: all {} (cache-served instantly)",
        results.len(),
        if results.iter().all(|r| r.is_ok()) {
            "ok"
        } else {
            "failed"
        }
    );

    // Layer 3: the lifecycle stream — sample what the workers published.
    let events = progress.drain();
    let planned = events
        .iter()
        .filter(|e| matches!(e.stage, JobStage::Planned { .. }))
        .count();
    println!(
        "  progress ring: {} buffered events ({} Planned), {} dropped oldest (bounded ring)",
        events.len(),
        planned,
        progress.dropped()
    );

    let report = svc.shutdown();
    println!("\n{report}");
    assert_eq!(report.completed, total as u64 + 4);
    assert_eq!(report.failed, 0);
    assert_eq!(report.tickets_outstanding, 0, "no ticket left behind");
}
