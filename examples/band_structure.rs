//! Model silicon band structure along L–Γ–X–W–Γ.
//!
//! Renders the folded-free-electron bands (with the model's 1.1 eV
//! scissor gap — the same band model the LR-TDDFT driver uses at Γ) as
//! an ASCII band diagram, plus the Monkhorst–Pack grids a small-cell
//! calculation would sample.
//!
//! Run with: `cargo run --release --example band_structure`

use ndft::dft::{band_structure, monkhorst_pack, si_path};

const ROWS: usize = 24;
const MAX_EV: f64 = 14.0;

fn main() {
    let path = si_path(16);
    let bands = band_structure(&path, 8, 1.1);

    println!(
        "Model Si bands (empty lattice + 1.1 eV scissor), {} k-points\n",
        path.len()
    );
    // ASCII raster: rows = energy bins (top = MAX_EV), cols = k-points.
    let cols = path.len();
    let mut raster = vec![vec![' '; cols]; ROWS];
    for band in &bands.energies {
        for (pi, &e) in band.iter().enumerate() {
            if e <= MAX_EV {
                let row = ((1.0 - e / MAX_EV) * (ROWS - 1) as f64).round() as usize;
                raster[row][pi] = '●';
            }
        }
    }
    for (r, row) in raster.iter().enumerate() {
        let ev = MAX_EV * (1.0 - r as f64 / (ROWS - 1) as f64);
        let line: String = row.iter().collect();
        println!("{ev:5.1} │{line}");
    }
    let mut axis = vec![' '; cols];
    for (pi, p) in path.iter().enumerate() {
        if !p.label.is_empty() {
            axis[pi] = p.label.chars().next().unwrap_or('?');
        }
    }
    println!("      └{}", "─".repeat(cols));
    println!("       {}", axis.iter().collect::<String>());

    println!(
        "\nDirect gap along path: {:.3} eV   indirect: {:.3} eV   bandwidth: {:.1} eV",
        bands.direct_gap(),
        bands.indirect_gap(),
        bands.bandwidth()
    );
    println!(
        "(The negative indirect gap is the empty-lattice artifact the module\n\
         docs disclaim: free-electron bands overlap by more than the scissor,\n\
         and it is hybridization — absent from this model — that opens real\n\
         silicon's indirect gap. The direct gap, which LR-TDDFT excites, is\n\
         pinned at the scissor by construction.)"
    );

    println!("\nMonkhorst–Pack grids a small-cell run would use:");
    for n in [2usize, 3, 4] {
        let grid = monkhorst_pack(n, n, n);
        let has_gamma = grid.iter().any(|k| k.frac == [0.0, 0.0, 0.0]);
        println!(
            "  {n}×{n}×{n}: {:>3} points, Γ {}  (weights sum to {:.3})",
            grid.len(),
            if has_gamma { "included" } else { "straddled" },
            grid.iter().map(|k| k.weight).sum::<f64>()
        );
    }
    println!(
        "\nThe paper's Si_16…Si_2048 supercells fold this entire zone onto Γ,\n\
         which is why their pipeline samples a single k-point; explicit grids\n\
         matter for the small unit cells a downstream user might start from."
    );
}
