//! Beyond Tamm–Dancoff: the full Casida equation on the same pipeline.
//!
//! The paper's LR-TDDFT pipeline stops at the Tamm–Dancoff (TDA)
//! Hamiltonian. This example runs the *full* Casida response problem on
//! the identical face-splitting → FFT → kernel coupling, quantifies the
//! TDA blue-shift, and prices the difference with the scheduler: the
//! extra symmetric solve lands exactly where SYEVD already runs.
//!
//! Run with: `cargo run --release --example casida_vs_tda`

use ndft::dft::casida::{run_casida, solve_tda_iterative};
use ndft::dft::SiliconSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Full Casida vs Tamm–Dancoff approximation\n");
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>14}",
        "system", "npair", "TDA gap", "Casida gap", "TDA blue-shift"
    );
    for atoms in [16usize, 32, 64] {
        let sys = SiliconSystem::new(atoms)?;
        let res = run_casida(&sys)?;
        println!(
            "{:<8} {:>6} {:>9.4} eV {:>9.4} eV {:>11.4} eV",
            format!("Si_{atoms}"),
            res.dim,
            res.tda_optical_gap(),
            res.optical_gap(),
            res.tda_optical_gap() - res.optical_gap()
        );
    }

    // Spectroscopy rarely needs the full spectrum: the iterative solver
    // returns the lowest states at a fraction of the dense cost.
    let sys = SiliconSystem::new(32)?;
    let lowest = solve_tda_iterative(&sys, 5)?;
    println!("\nLowest 5 TDA excitations of Si_32 via block Davidson (eV):");
    for (i, e) in lowest.iter().enumerate() {
        println!("  ω_{i} = {e:.4}");
    }
    println!(
        "\nEvery Casida energy sits at or below its TDA partner (the TDA\n\
         truncation discards the de-excitation coupling that softens the\n\
         response). For these weakly-coupled silicon supercells the shift is\n\
         a few meV at the gap — which is why the paper's TDA-only pipeline is\n\
         physically adequate, and why its SYEVD timing carries over to the\n\
         full-Casida variant (one extra solve of the same shape)."
    );
    Ok(())
}
