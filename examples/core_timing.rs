//! Watching a wimpy core work: the per-core view of near-data computing.
//!
//! The NDP premise is often stated at system level (bandwidth close to
//! data). This example zooms into one core: the same streaming loop runs
//! on a Table III host core and on one NDP core, with the stream
//! prefetcher toggled, showing exactly which microarchitectural feature
//! buys which cycles.
//!
//! Run with: `cargo run --release --example core_timing`

use ndft::sim::timing::{CoreModel, CoreTimingConfig, KernelTrace, MemPort};
use ndft::sim::{AccessPattern, Calibration, CpuBaselineConfig, SystemConfig};

fn show(label: &str, r: &ndft::sim::CoreReport, clock_hz: f64) {
    println!(
        "{label:<34} {:>7.2} IPC {:>7.1}% stalled {:>8} fills {:>8.1} µs",
        r.ipc(),
        100.0 * r.mem_stall_fraction(),
        r.dram_fills,
        r.seconds(clock_hz) * 1e6
    );
}

fn main() {
    let sys = SystemConfig::paper_table3();
    let cal = Calibration::measure(&sys, &CpuBaselineConfig::paper_baseline(), 7);
    let cpu_port = MemPort {
        fill_latency_s: cal.host_to_stack.idle_latency,
        bandwidth_bps: cal.host_to_stack.stream_bw / sys.cpu.cores as f64,
    };
    let ndp_port = MemPort {
        fill_latency_s: cal.ndp_stack.idle_latency,
        bandwidth_bps: cal.ndp_stack.stream_bw
            / (sys.ndp.units_per_stack * sys.ndp.cores_per_unit) as f64,
    };

    // A face-splitting-product-like loop: stream 2 MB, 1 flop per value.
    let trace = KernelTrace::from_mix(262_144, 1.0, AccessPattern::Stream, 42);
    println!(
        "Streaming loop, {} accesses, {} instructions:\n",
        trace.memory_ops(),
        trace.instructions()
    );

    let mut host = CoreModel::cpu_core(&sys.cpu, cpu_port);
    show(
        "host core (OOO, 3-level cache)",
        &host.run(&trace),
        sys.cpu.clock_hz,
    );

    let mut ndp = CoreModel::ndp_core(&sys.ndp, ndp_port);
    show(
        "NDP core (in-order + prefetch)",
        &ndp.run(&trace),
        sys.ndp.clock_hz,
    );

    // Same NDP core with the prefetcher off: the stall column shows what
    // the prefetcher was hiding.
    let base = CoreModel::ndp_core(&sys.ndp, ndp_port).config();
    let no_pf = CoreTimingConfig {
        prefetch_degree: 0,
        ..base
    };
    let mut ndp_no_pf = CoreModel::with_config(no_pf, vec![sys.ndp.l1]);
    show(
        "NDP core, prefetcher disabled",
        &ndp_no_pf.run(&trace),
        sys.ndp.clock_hz,
    );

    // And with latency artificially halved — latency barely matters once
    // the prefetcher runs ahead; bandwidth is the real wall.
    let low_lat = CoreTimingConfig {
        fill_latency: base.fill_latency * 0.5,
        ..base
    };
    let mut ndp_fast = CoreModel::with_config(low_lat, vec![sys.ndp.l1]);
    show(
        "NDP core, fill latency halved",
        &ndp_fast.run(&trace),
        sys.ndp.clock_hz,
    );

    println!(
        "\nReading: the in-order core without a prefetcher exposes every fill's\n\
         latency (2.3× slower). With it, the loop runs near its bandwidth\n\
         share; halving latency still buys ~20 % because a degree-4 prefetcher\n\
         only just covers the latency×bandwidth product — a deeper prefetcher,\n\
         not a faster DRAM, is the cheap fix. Near-data computing's per-core\n\
         story is a *bandwidth* story: multiply the NDP line by 256 cores\n\
         against the host's 8 and the system-level Fig. 7 speedups follow."
    );
}
