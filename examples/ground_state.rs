//! Ground state → excited states: the full physics chain.
//!
//! Solves the model Kohn–Sham problem for Si_16 with the plane-wave
//! Davidson solver (`ndft-dft::scf`), then feeds the converged orbitals
//! into the LR-TDDFT response pipeline and prints both spectra side by
//! side with the quick model-orbital path.
//!
//! Run with: `cargo run --release --example ground_state`

use ndft::dft::{lr_tddft_from_orbitals, run_lr_tddft, run_scf, ScfOptions, SiliconSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = SiliconSystem::new(16)?;
    println!("Solving the Kohn–Sham ground state of {sys} …");
    let nv = sys.valence_window();
    let nc = sys.conduction_window();
    let opts = ScfOptions {
        bands: nv + nc,
        max_iterations: 8,
        ..Default::default()
    };
    let gs = run_scf(&sys, &opts)?;
    println!(
        "Converged {} bands in {} iterations (max residual {:.2e})",
        gs.energies_ev.len(),
        gs.iterations,
        gs.max_residual()
    );
    println!("Band energies (eV):");
    for (b, e) in gs.energies_ev.iter().enumerate() {
        let tag = if b < nv { "valence " } else { "conduct." };
        println!("  band {b:>2} [{tag}]  {e:>9.4}");
    }

    // Split the solved bands into the LR-TDDFT windows. The grid-norm
    // orbitals must be rescaled to quadrature normalization (⟨ψ|ψ⟩dv = 1).
    let nr = sys.grid().len();
    let dv = sys.volume() / nr as f64;
    let s = 1.0 / dv.sqrt();
    let scale_rows = |rows: std::ops::Range<usize>| {
        let mut data = Vec::with_capacity(rows.len() * nr);
        for r in rows {
            data.extend(gs.orbitals.row(r).iter().map(|z| z.scale(s)));
        }
        ndft::numerics::CMat::from_vec(data.len() / nr, nr, data)
    };
    let valence = scale_rows(0..nv);
    let conduction = scale_rows(nv..nv + nc);
    let eps_v = gs.energies_ev[..nv].to_vec();
    let eps_c = gs.energies_ev[nv..nv + nc].to_vec();

    println!("\nRunning LR-TDDFT on the SCF orbitals …");
    let scf_spectrum = lr_tddft_from_orbitals(&sys, &valence, &conduction, &eps_v, &eps_c)?;
    let model_spectrum = run_lr_tddft(&sys)?;
    println!(
        "{:<8} {:>14} {:>14}",
        "state", "SCF path (eV)", "model path (eV)"
    );
    for i in 0..6.min(scf_spectrum.energies_ev.len()) {
        println!(
            "{:<8} {:>14.4} {:>14.4}",
            format!("ω_{i}"),
            scf_spectrum.energies_ev[i],
            model_spectrum.energies_ev[i]
        );
    }
    println!(
        "\nOptical gaps: SCF {:.3} eV, model {:.3} eV (both positive and finite —",
        scf_spectrum.optical_gap(),
        model_spectrum.optical_gap()
    );
    println!("the timing study is insensitive to which orbital source is used).");
    Ok(())
}
