//! Ab-initio-MD write traffic meets the shared-block coherence protocol.
//!
//! The paper evaluates one static geometry; in production, LR-TDDFT sits
//! inside a molecular-dynamics loop where atoms move every step and the
//! pseudopotential blocks of displaced atoms must be rebuilt and
//! re-propagated to every stack that cached them. This example measures
//! that write intensity from an actual MD trajectory (velocity-Verlet on
//! the harmonic diamond lattice) at several temperatures, then feeds it
//! into the coherence protocol to see how much of the hierarchical
//! scheme's caching benefit survives.
//!
//! Run with: `cargo run --release --example md_coherence`

use ndft::dft::{run_md, MdOptions, SiliconSystem};
use ndft::shmem::coherence::simulate_update_cycle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = SiliconSystem::new(64)?;
    println!(
        "MD on {} (harmonic diamond lattice, dt = 0.5 fs, 400 steps):\n",
        sys.label()
    );
    println!(
        "{:>7} {:>14} {:>14} {:>16} {:>16}",
        "T (K)", "drift (Å)", "rebuild/step", "coherence save", "naive refetch"
    );
    for temperature in [100.0, 300.0, 600.0, 1200.0] {
        let traj = run_md(
            &sys,
            &MdOptions {
                temperature_k: temperature,
                steps: 400,
                ..MdOptions::default()
            },
        );
        let write_fraction = traj.mean_rebuild_fraction().clamp(0.0, 1.0);
        // One shared block per atom, 16 stacks, 10 response iterations.
        let report = simulate_update_cycle(16, sys.atoms(), 10, write_fraction);
        println!(
            "{:>7} {:>14.4} {:>13.1}% {:>15.1}% {:>16}",
            temperature,
            traj.final_mean_displacement,
            100.0 * write_fraction,
            100.0 * report.traffic_saving(),
            report.naive_fetches
        );
    }
    println!(
        "\nReading: at 100–300 K almost no atom crosses the 0.05 Å projector\n\
         threshold per LR-TDDFT iteration, so version-based invalidation\n\
         preserves nearly all of the hierarchical scheme's traffic filtering.\n\
         Hot trajectories rewrite more blocks and push the protocol toward\n\
         the refetch-everything floor — the regime where the paper's static\n\
         shared-block layout would need the coherence layer this repository\n\
         adds (DESIGN.md §8)."
    );
    Ok(())
}
