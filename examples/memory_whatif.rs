//! Trace-driven what-if: replay identical memory traffic against
//! different memory systems — the experiment style zsim/Ramulator users
//! run daily, on our substrate.
//!
//! Records one trace per access pattern, then replays it against the
//! CPU baseline's DDR4 channels, one HBM2 stack, and an HBM2 stack with
//! refresh disabled, printing achieved bandwidth and row-buffer behaviour.
//!
//! Run with: `cargo run --release --example memory_whatif`

use ndft::sim::{AccessPattern, CpuBaselineConfig, DramModel, SystemConfig, Trace};

fn main() {
    let sys = SystemConfig::paper_table3();
    let base = CpuBaselineConfig::paper_baseline();

    let patterns = [
        ("stream", AccessPattern::Stream),
        (
            "strided 65×",
            AccessPattern::Strided {
                stride_bytes: 65 * 64,
            },
        ),
        (
            "random 1 GiB",
            AccessPattern::Random {
                range_bytes: 1 << 30,
            },
        ),
    ];

    println!("Replaying byte-identical traffic against three memory systems");
    println!("(each trace is regenerated at the device's burst granularity)\n");
    println!(
        "{:<14} {:<22} {:>12} {:>10} {:>10}",
        "pattern", "memory system", "bandwidth", "row hits", "conflicts"
    );
    const TOTAL_BYTES: usize = 16_384 * 64;
    for (name, pattern) in patterns {
        let mut systems: Vec<(&str, DramModel, f64)> = vec![
            (
                "DDR4 ×8 (Xeon)",
                DramModel::new(
                    base.timings,
                    base.channels,
                    base.banks_per_channel,
                    base.row_bytes,
                ),
                base.timings.clock_hz,
            ),
            (
                "HBM2 stack ×8ch",
                DramModel::new(
                    sys.memory.timings,
                    sys.memory.channels_per_stack,
                    sys.memory.banks_per_channel,
                    sys.memory.row_bytes,
                ),
                sys.memory.timings.clock_hz,
            ),
            {
                let mut t = sys.memory.timings;
                t.t_refi = 0; // what-if: no refresh
                (
                    "HBM2, no refresh",
                    DramModel::new(
                        t,
                        sys.memory.channels_per_stack,
                        sys.memory.banks_per_channel,
                        sys.memory.row_bytes,
                    ),
                    t.clock_hz,
                )
            },
        ];
        for (label, dram, clock) in systems.iter_mut() {
            let burst = dram.burst_bytes();
            let trace = Trace::from_pattern(pattern, TOTAL_BYTES / burst, burst, 42);
            let stats = trace.replay(dram);
            println!(
                "{:<14} {:<22} {:>9.1} GB/s {:>9.1}% {:>10}",
                name,
                label,
                stats.bandwidth(*clock) / 1e9,
                100.0 * stats.row_hit_rate(),
                stats.row_conflicts
            );
        }
        println!();
    }
    println!("Takeaways: streams ride open rows on both technologies; random");
    println!("traffic collapses to row-cycle rates everywhere — the reason the");
    println!("pseudopotential gathers needed the shared-block redesign; refresh");
    println!("costs a few percent of streaming bandwidth.");
}
