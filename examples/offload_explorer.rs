//! Offload-decision explorer: watch the §IV-A machinery work.
//!
//! For a chosen system size this prints the static code analyzer's
//! per-kernel verdicts, compares the cost-aware DP plan against greedy
//! and pinned baselines, and reproduces the offload-granularity study
//! behind the paper's function-level design choice.
//!
//! Run with: `cargo run --release --example offload_explorer [atoms]`

use ndft::dft::{build_task_graph, SiliconSystem};
use ndft::sched::{
    granularity_study, plan_chain, plan_exhaustive, plan_greedy, plan_pinned, StaticCodeAnalyzer,
    Target,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let atoms: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(1024);
    let system = SiliconSystem::new(atoms)?;
    let graph = build_task_graph(&system, 1);
    let sca = StaticCodeAnalyzer::paper_default();

    println!("=== Static code analysis of {} ===", system);
    println!(
        "{:<34} {:>10} {:>14} {:>12} {:>12} {:>6}",
        "stage", "AI (F/B)", "class", "CPU est.", "NDP est.", "pref"
    );
    for stage in &graph.stages {
        let a = sca.analyze(stage);
        println!(
            "{:<34} {:>10.3} {:>14} {:>11.2}ms {:>11.2}ms {:>6}",
            stage.name,
            a.intensity,
            match a.boundedness {
                ndft::sched::Boundedness::MemoryBound => "memory-bound",
                ndft::sched::Boundedness::ComputeBound => "compute-bound",
            },
            a.cpu_time * 1e3,
            a.ndp_time * 1e3,
            match a.preferred {
                Target::Cpu => "CPU",
                Target::Ndp => "NDP",
            }
        );
    }

    println!("\n=== Placement plans (predicted total, Eq. 1 overhead) ===");
    let dp = plan_chain(&graph.stages, &sca);
    let greedy = plan_greedy(&graph.stages, &sca);
    let cpu_only = plan_pinned(&graph.stages, Target::Cpu, &sca);
    let ndp_only = plan_pinned(&graph.stages, Target::Ndp, &sca);
    for (name, plan) in [
        ("cost-aware DP (NDFT)", &dp),
        ("greedy per-stage", &greedy),
        ("CPU-only", &cpu_only),
        ("NDP-only", &ndp_only),
    ] {
        println!(
            "{:<22} total {:>10.2} ms  overhead {:>8.3} ms  crossings {}",
            name,
            plan.total_time() * 1e3,
            plan.sched_overhead * 1e3,
            plan.crossings()
        );
    }
    if graph.stages.len() <= 24 {
        let exhaustive = plan_exhaustive(&graph.stages, &sca);
        println!(
            "{:<22} total {:>10.2} ms  (validates the DP: {})",
            "exhaustive 2^n",
            exhaustive.total_time() * 1e3,
            if (exhaustive.total_time() - dp.total_time()).abs() < 1e-9 * dp.total_time().max(1e-12)
            {
                "match"
            } else {
                "MISMATCH"
            }
        );
    }
    println!("\nDP placement:");
    for (stage, target) in graph.stages.iter().zip(&dp.placement) {
        println!("  {:<34} → {:?}", stage.name, target);
    }

    println!("\n=== Offload granularity (§IV-A-1) ===");
    for g in granularity_study(&graph.stages, &sca) {
        println!(
            "  {:<12} {:>7} segments  total {:>10.2} ms  overhead {:>10.3} ms",
            g.granularity.label(),
            g.segments,
            g.total_time * 1e3,
            g.sched_overhead * 1e3
        );
    }
    println!("\nFunction-level offloading wins — the paper's design choice.");
    Ok(())
}
