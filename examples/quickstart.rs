//! Quickstart: the two faces of the NDFT reproduction in one file.
//!
//! 1. Run the *numeric* LR-TDDFT pipeline (real FFTs, GEMM, SYEVD) on a
//!    small silicon system and print its excitation spectrum.
//! 2. Run the *timed* pipeline on the paper's small evaluation system and
//!    print the CPU / GPU / NDFT comparison of Fig. 7(a).
//!
//! Run with: `cargo run --release --example quickstart`

use ndft::core::report::{fmt_time, render_run};
use ndft::core::{run_cpu_baseline, run_gpu_baseline, run_ndft};
use ndft::dft::{build_task_graph, run_lr_tddft, SiliconSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: real physics on Si_16. ---
    let si16 = SiliconSystem::new(16)?;
    println!("Running numeric LR-TDDFT on {si16} …");
    let spectrum = run_lr_tddft(&si16)?;
    println!(
        "Response Hamiltonian: {}×{}, Hermiticity deviation {:.2e}",
        spectrum.hamiltonian_dim, spectrum.hamiltonian_dim, spectrum.hermiticity_error
    );
    println!("Optical gap: {:.3} eV", spectrum.optical_gap());
    println!("Lowest 8 excitation energies (eV):");
    for (i, e) in spectrum.energies_ev.iter().take(8).enumerate() {
        println!("  ω_{i} = {e:.4}");
    }

    // --- Part 2: the paper's small-system evaluation (Fig. 7a). ---
    let small = SiliconSystem::small();
    println!("\nTiming the LR-TDDFT pipeline on {small} across platforms …");
    let graph = build_task_graph(&small, 1);
    let cpu = run_cpu_baseline(&graph);
    let gpu = run_gpu_baseline(&graph);
    let ndft = run_ndft(&graph);
    print!("{}", render_run(&cpu));
    print!("{}", render_run(&gpu));
    print!("{}", render_run(&ndft));
    println!(
        "\nNDFT: {} total — {:.2}x over CPU (paper: 1.9x), {:.2}x over GPU (paper: 1.6x)",
        fmt_time(ndft.total()),
        ndft.speedup_over(&cpu),
        ndft.speedup_over(&gpu)
    );
    Ok(())
}
