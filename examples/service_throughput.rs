//! Demo: 100 mixed DFT jobs through the `ndft-serve` engine.
//!
//! A synthetic client stream — ground-state SCF solves, MD segments with
//! varying seeds, TDA and full-Casida spectra, with realistic repetition
//! (users resubmit identical calculations) — flows through the bounded
//! queue into the worker pool. Workers batch by workload class, consult
//! the cost-aware planner once per batch, execute the real numerics, and
//! fill the content-addressed result cache.
//!
//! Run with: `cargo run --release --example service_throughput`

use ndft::serve::{DftJob, DftService, ServeConfig, SubmitError};

fn job_stream() -> Vec<DftJob> {
    DftJob::demo_mix(100)
}

fn main() {
    let config = ServeConfig {
        workers: 4,
        shards: 4,
        queue_capacity: 32,
        max_batch: 8,
        ..ServeConfig::default()
    };
    println!(
        "ndft-serve demo: 100 mixed jobs, {} workers, {} shards, queue {} (policy: {})",
        config.workers,
        config.shards,
        config.queue_capacity,
        config.policy.label()
    );

    let svc = DftService::start(config);
    let mut tickets = Vec::new();
    let mut backpressure_retries = 0u32;
    for job in job_stream() {
        // Backpressure-aware client: retry on QueueFull with the blocking
        // path (a real client would back off and do something useful).
        match svc.submit(job.clone()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => {
                backpressure_retries += 1;
                tickets.push(svc.submit_blocking(job).expect("blocking submit"));
            }
            Err(e) => panic!("submission failed: {e}"),
        }
    }

    for (i, ticket) in tickets.iter().enumerate() {
        let outcome = ticket.wait().expect("job completes");
        if i % 25 == 0 {
            println!(
                "  job {i:>3}: {:<14} headline {:>9.3}  planner {:.3}s vs cpu-pinned {:.3}s",
                outcome.job.to_string(),
                outcome.payload.headline(),
                outcome.placement.modeled_time(),
                outcome.placement.cpu_pinned_time,
            );
        }
    }

    let report = svc.shutdown();
    println!("\n{report}");
    println!("\n  backpressure retries: {backpressure_retries}");
    assert_eq!(report.completed, 100);
    assert!(report.cache.hit_rate() > 0.0, "stream contains repeats");
}
