//! Demo: 100 mixed DFT jobs through the `ndft-serve` engine.
//!
//! A synthetic client stream — ground-state SCF solves, MD segments with
//! varying seeds, TDA and full-Casida spectra, with realistic repetition
//! (users resubmit identical calculations) — flows through the bounded
//! queue into the worker pool. Workers batch by workload class, consult
//! the cost-aware planner once per batch, execute the real numerics, and
//! fill the content-addressed result cache.
//!
//! Run with: `cargo run --release --example service_throughput`

use ndft::serve::{DftJob, DftService, ServeConfig, SubmitError};

fn job_stream() -> Vec<DftJob> {
    let mut jobs = Vec::with_capacity(100);
    for i in 0..100u64 {
        jobs.push(match i % 10 {
            // Repeated SCF configurations — the cache's bread and butter.
            0 | 1 => DftJob::GroundState {
                atoms: 8,
                bands: 4,
                max_iterations: 4,
            },
            2 => DftJob::GroundState {
                atoms: 16,
                bands: 4,
                max_iterations: 4,
            },
            // MD segments: seeds vary, so most are genuinely new work,
            // but each 20-job cycle repeats a seed.
            3..=5 => DftJob::MdSegment {
                atoms: 64,
                steps: 10,
                temperature_k: 300.0,
                seed: (i / 10) % 2 * 100 + i % 10,
            },
            6 => DftJob::MdSegment {
                atoms: 128,
                steps: 10,
                temperature_k: 600.0,
                seed: 42, // identical every cycle — always cached after the first
            },
            // Spectra: two sizes of TDA plus the full Casida solve.
            7 => DftJob::Spectrum {
                atoms: 8,
                full_casida: false,
            },
            8 => DftJob::Spectrum {
                atoms: 16,
                full_casida: false,
            },
            _ => DftJob::Spectrum {
                atoms: 16,
                full_casida: true,
            },
        });
    }
    jobs
}

fn main() {
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 32,
        max_batch: 8,
        ..ServeConfig::default()
    };
    println!(
        "ndft-serve demo: 100 mixed jobs, {} workers, queue {} (policy: {})",
        config.workers,
        config.queue_capacity,
        config.policy.label()
    );

    let svc = DftService::start(config);
    let mut tickets = Vec::new();
    let mut backpressure_retries = 0u32;
    for job in job_stream() {
        // Backpressure-aware client: retry on QueueFull with the blocking
        // path (a real client would back off and do something useful).
        match svc.submit(job.clone()) {
            Ok(t) => tickets.push(t),
            Err(SubmitError::QueueFull) => {
                backpressure_retries += 1;
                tickets.push(svc.submit_blocking(job).expect("blocking submit"));
            }
            Err(e) => panic!("submission failed: {e}"),
        }
    }

    for (i, ticket) in tickets.iter().enumerate() {
        let outcome = ticket.wait().expect("job completes");
        if i % 25 == 0 {
            println!(
                "  job {i:>3}: {:<14} headline {:>9.3}  planner {:.3}s vs cpu-pinned {:.3}s",
                outcome.job.to_string(),
                outcome.payload.headline(),
                outcome.placement.modeled_time(),
                outcome.placement.cpu_pinned_time,
            );
        }
    }

    let report = svc.shutdown();
    println!("\n{report}");
    println!("\n  backpressure retries: {backpressure_retries}");
    assert_eq!(report.completed, 100);
    assert!(report.cache.hit_rate() > 0.0, "stream contains repeats");
}
