//! Walkthrough of the Table II shared-memory API and the §IV-B/§IV-C
//! co-design: shared-block allocation, local/remote reads through the
//! comm arbiters, hierarchical filtering, and the Table I footprint
//! consequences.
//!
//! Run with: `cargo run --release --example shared_memory_demo`

use ndft::dft::atom_block_bytes;
use ndft::shmem::{simulate_block_gather, table1_rows, CommScheme, NdftRuntime, UnitId};
use ndft::sim::SystemConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::paper_table3();
    let mut rt = NdftRuntime::new(&cfg, CommScheme::Hierarchical);

    println!("=== Table II API walkthrough ===");
    // NDFT_Alloc_Shared: one atom's pseudopotential block, homed on stack 0.
    let block = rt.alloc_shared(atom_block_bytes(), 0)?;
    println!(
        "NDFT_Alloc_Shared: {:.2} MiB block homed on stack 0",
        atom_block_bytes() as f64 / (1 << 20) as f64
    );

    // NDFT_Write from a unit in the home stack.
    let w = rt.write(UnitId { stack: 0, unit: 0 }, block, atom_block_bytes())?;
    println!("NDFT_Write  (home stack):      {:>9.3} µs", w.latency * 1e6);

    // NDFT_Read from the home stack: served locally.
    let r = rt.read(UnitId { stack: 0, unit: 1 }, block, atom_block_bytes())?;
    println!(
        "NDFT_Read   (home stack):      {:>9.3} µs  remote: {}",
        r.latency * 1e6,
        r.remote
    );

    // NDFT_Read_Remote from a far stack: crosses the mesh once…
    let far = rt.read(UnitId { stack: 15, unit: 0 }, block, atom_block_bytes())?;
    println!(
        "NDFT_Read   (stack 15, cold):  {:>9.3} µs  remote: {}",
        far.latency * 1e6,
        far.remote
    );

    // …then the arbiter serves the cached copy.
    let filtered = rt.read(UnitId { stack: 15, unit: 7 }, block, atom_block_bytes())?;
    println!(
        "NDFT_Read   (stack 15, warm):  {:>9.3} µs  remote: {}  (filtered by the arbiter)",
        filtered.latency * 1e6,
        filtered.remote
    );

    // NDFT_Broadcast: push to every stack's shared memory.
    let b = rt.broadcast(block)?;
    println!("NDFT_Broadcast (all stacks):   {:>9.3} µs", b.latency * 1e6);
    let stats = rt.stats();
    println!(
        "Runtime stats: {} local ops, {} remote ops, {} filtered ({:.0} % filter rate)",
        stats.local_ops,
        stats.remote_ops,
        stats.filtered_ops,
        100.0 * stats.filter_rate()
    );

    println!("\n=== Hierarchical vs flat gather (Si_1024's 1024 atom blocks) ===");
    for scheme in [CommScheme::Hierarchical, CommScheme::Flat] {
        let g = simulate_block_gather(&cfg, 1024, atom_block_bytes(), scheme);
        println!(
            "{:<14} inter-stack {:>7.2} GB, {:>7} messages, makespan {:>8.2} ms",
            format!("{scheme:?}:"),
            g.inter_stack_bytes as f64 / 1e9,
            g.messages,
            g.makespan * 1e3
        );
    }

    println!("\n=== Table I: why shared blocks exist ===");
    print!("{}", ndft::core::report::render_table1(&table1_rows()));
    Ok(())
}
