//! Scalability study across all seven silicon systems (the paper's
//! Fig. 8), plus the per-kernel view of where NDFT's advantage comes
//! from as systems grow.
//!
//! Run with: `cargo run --release --example si_scaling`

use ndft::core::report::render_fig8;
use ndft::core::{fig8, run_cpu_baseline, run_ndft};
use ndft::dft::{build_task_graph, KernelKind, SiliconSystem};

fn main() {
    println!("Sweeping Si_16 … Si_2048 on CPU, GPU and NDFT …\n");
    let rows = fig8();
    print!("{}", render_fig8(&rows));

    // Where does the growing advantage come from? Show the FFT and
    // face-splitting speedups per size: the memory-bound kernels ride the
    // in-stack bandwidth, and their share of total time grows with N.
    println!("\nPer-kernel NDFT speedup over CPU:");
    println!(
        "{:<10} {:>8} {:>14} {:>10}",
        "system", "FFT", "Face-splitting", "GEMM"
    );
    for sys in SiliconSystem::paper_suite() {
        let graph = build_task_graph(&sys, 1);
        let cpu = run_cpu_baseline(&graph);
        let ndft = run_ndft(&graph);
        let ratio = |k: KernelKind| cpu.kind_time(k) / ndft.kind_time(k).max(1e-12);
        println!(
            "{:<10} {:>7.2}x {:>13.2}x {:>9.2}x",
            sys.label(),
            ratio(KernelKind::Fft),
            ratio(KernelKind::FaceSplitting),
            ratio(KernelKind::Gemm),
        );
    }
    println!("\n(paper headline: FFT 11.2x on the large system; GEMM stays near 1x");
    println!(" because the cost-aware scheduler keeps it on the host CPU)");
}
