//! Trace explorer: end-to-end span chains out of a live serve engine.
//!
//! A mixed job stream (SCF solves, MD segments, TDA and Casida spectra,
//! with realistic resubmission) runs through `DftService` with a
//! `TraceCollector` attached. Afterwards the example (1) dumps the
//! whole run as `trace.json` in Chrome trace-event format — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> to scrub through
//! every job's lifecycle — and (2) reconstructs per-job span chains
//! from the raw events to print the three slowest jobs with a
//! stage-by-stage breakdown of where their time went, next to the
//! engine's per-stage latency percentiles over the whole run.
//!
//! Run with: `cargo run --release --example trace_explorer [jobs]`

use ndft::serve::{
    chrome_trace_json, DftJob, DftService, ServeConfig, Stage, TraceEvent, TraceEventKind, TraceId,
};
use std::collections::HashMap;

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("job count"))
        .unwrap_or(60);
    let config = ServeConfig {
        workers: 4,
        shards: 4,
        queue_capacity: 64,
        max_batch: 8,
        ..ServeConfig::default()
    };
    println!(
        "trace explorer: {jobs} mixed jobs, {} workers, {} shards\n",
        config.workers, config.shards
    );

    let svc = DftService::start(config);
    // Attach the collector before submitting: publishing is
    // subscriber-gated, so events only flow while someone listens.
    let collector = svc.trace();
    let tickets: Vec<_> = DftJob::demo_mix(jobs)
        .into_iter()
        .map(|job| svc.submit_blocking(job).expect("submit"))
        .collect();
    for t in &tickets {
        t.wait().expect("job completes");
    }
    let snapshot = svc.telemetry();
    svc.shutdown();
    // Drained after shutdown, so even the last batch's fulfill events
    // (published moments after the tickets resolve) are in the ring.
    let events = collector.drain();

    let json = chrome_trace_json(&events);
    std::fs::write("trace.json", &json).expect("write trace.json");
    println!(
        "wrote trace.json  ({} events, {} bytes — load it at chrome://tracing)",
        events.len(),
        json.len()
    );

    // Rebuild each job's chain from the flat event stream. Events carry
    // a gapless publication sequence, so sorting by `seq` within a
    // trace restores exactly the lifecycle order the engine saw.
    let mut chains: HashMap<TraceId, Vec<&TraceEvent>> = HashMap::new();
    for event in &events {
        chains.entry(event.trace).or_default().push(event);
    }
    let mut ranked: Vec<(u64, TraceId, Vec<&TraceEvent>)> = chains
        .into_iter()
        .map(|(trace, mut chain)| {
            chain.sort_by_key(|e| e.seq);
            let start = chain.first().map_or(0, |e| e.start_ns);
            let end = chain.iter().map(|e| e.end_ns()).max().unwrap_or(start);
            (end.saturating_sub(start), trace, chain)
        })
        .collect();
    ranked.sort_by_key(|(e2e, ..)| std::cmp::Reverse(*e2e));

    println!("\ntop 3 slowest jobs (of {} traced):", ranked.len());
    for (e2e_ns, trace, chain) in ranked.iter().take(3) {
        let class = chain.first().expect("nonempty chain").class;
        println!(
            "\n  trace {:>4}  {:>22}  end-to-end {:>9.3} ms",
            trace.0,
            class.to_string(),
            *e2e_ns as f64 / 1e6
        );
        let start = chain.first().expect("nonempty chain").start_ns;
        for event in chain {
            let offset_ms = event.start_ns.saturating_sub(start) as f64 / 1e6;
            if event.kind.is_instant() {
                println!("    +{offset_ms:>9.3} ms  {:<12} ·", event.kind.name());
            } else {
                println!(
                    "    +{offset_ms:>9.3} ms  {:<12} {:>9.3} ms{}",
                    event.kind.name(),
                    event.dur_ns as f64 / 1e6,
                    match event.kind {
                        TraceEventKind::TicketFulfill { cached: true, .. } => "  (cache serve)",
                        _ => "",
                    }
                );
            }
        }
    }

    println!("\nper-stage latency percentiles over the whole run (ms):\n");
    println!(
        "{:>12} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99", "max"
    );
    for stage in Stage::ALL {
        let h = snapshot.stage_total(stage);
        if h.count() == 0 {
            continue;
        }
        println!(
            "{:>12} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            stage.label(),
            h.count(),
            h.quantile_ns(0.50) as f64 / 1e6,
            h.quantile_ns(0.90) as f64 / 1e6,
            h.quantile_ns(0.99) as f64 / 1e6,
            h.max_ns() as f64 / 1e6,
        );
    }
    println!(
        "\n{} span events recorded, {} dropped",
        snapshot.trace_events_recorded, snapshot.trace_events_dropped
    );
}
