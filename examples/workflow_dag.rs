//! Workflow DAG demo: pipeline serving with dependency-aware release.
//!
//! One [`WorkflowSpec`] carries two coupled pipelines through the serve
//! engine at once:
//!
//! * an **MD trajectory** — three chained `MdSegment` frames, each
//!   fanning out into a full-Casida excitation `Spectrum` for its
//!   snapshot, and
//! * a **k-point sweep** — a `GroundState` SCF seeding four
//!   `ScfSelfConsistent` refinements (the seed rides the warm-input
//!   injection path), all reducing into one `BandStructure`.
//!
//! The coordinator holds every dependent node *outside* the queue
//! shards and releases it the instant its last parent fulfills — no
//! polling thread, so independent branches overlap freely. Afterwards
//! the example reconstructs the workflow's **critical path** from the
//! trace: each node's `dag-wait` span names its workflow + node index,
//! which stitches the per-job trace lanes back into the graph.
//!
//! Run with: `cargo run --release --example workflow_dag`

use ndft::serve::{
    DftJob, DftService, NodeId, ServeConfig, TraceEvent, TraceEventKind, WorkflowSpec,
};
use std::collections::HashMap;

fn main() {
    let svc = DftService::start(ServeConfig {
        workers: 4,
        shards: 4,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let collector = svc.trace();

    // ---- build the spec ------------------------------------------------
    let mut spec = WorkflowSpec::new();
    let mut labels: Vec<String> = Vec::new();
    let label = |labels: &mut Vec<String>, id: NodeId, text: String| {
        debug_assert_eq!(id.index(), labels.len());
        labels.push(text);
        id
    };

    // MD trajectory: frame n depends on frame n-1, and every frame fans
    // out into its own excitation spectrum.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut prev: Option<NodeId> = None;
    for frame in 0..3u64 {
        let md = label(
            &mut labels,
            spec.add_node(DftJob::MdSegment {
                atoms: 8 + 8 * frame as usize,
                steps: 24,
                temperature_k: 300.0,
                seed: 40 + frame,
            }),
            format!("md-frame-{frame}"),
        );
        if let Some(p) = prev {
            edges.push((p, md));
        }
        let casida = label(
            &mut labels,
            spec.add_node(DftJob::Spectrum {
                atoms: 8 + 8 * frame as usize,
                full_casida: true,
            }),
            format!("casida-frame-{frame}"),
        );
        edges.push((md, casida));
        prev = Some(md);
    }

    // K-point sweep: one SCF seeds four self-consistent refinements
    // (same atoms/bands/iterations, so the parent outcome is injected
    // as a warm input), and the sweep reduces into one band structure.
    let scf = label(
        &mut labels,
        spec.add_node(DftJob::GroundState {
            atoms: 8,
            bands: 4,
            max_iterations: 12,
        }),
        "scf-seed".to_string(),
    );
    let band = label(
        &mut labels,
        spec.add_node(DftJob::BandStructure {
            atoms: 8,
            segments: 4,
            n_bands: 4,
            scissor_ev: 0.9,
        }),
        "band-structure".to_string(),
    );
    for k in 0..4u64 {
        let sweep = label(
            &mut labels,
            spec.add_node(DftJob::ScfSelfConsistent {
                atoms: 8,
                bands: 4,
                max_iterations: 12,
                occupied: 2,
                cycles: 2 + k as usize,
                alpha: 0.4,
            }),
            format!("kpoint-sweep-{k}"),
        );
        edges.push((scf, sweep));
        edges.push((sweep, band));
    }
    let mut parents: HashMap<usize, Vec<usize>> = HashMap::new();
    for (from, to) in edges {
        spec.add_edge(from, to);
        parents.entry(to.index()).or_default().push(from.index());
    }

    println!(
        "workflow: {} nodes (MD trajectory ⇒ per-frame Casida, SCF ⇒ k-sweep ⇒ band structure)\n",
        spec.len()
    );

    // ---- run it --------------------------------------------------------
    let workflow = svc.submit_workflow(spec).expect("valid spec");
    let results = workflow.wait_all();
    for (node, result) in results.iter().enumerate() {
        let outcome = result.as_ref().expect("node completes");
        println!(
            "  {:>16}  headline {:>9.4}  via {:?}",
            labels[node],
            outcome.payload.headline(),
            outcome.placement.policy
        );
    }

    let report = svc.shutdown();
    let events = collector.drain();

    // ---- critical path from the trace ----------------------------------
    // Each released node emitted a `dag-wait` span on its job's trace
    // lane carrying (workflow, node): that is the join key between the
    // graph and the flat event stream.
    let mut node_trace: HashMap<usize, &TraceEvent> = HashMap::new();
    for event in &events {
        if let TraceEventKind::DagWait { node, .. } = event.kind {
            node_trace.insert(node, event);
        }
    }
    let mut chains: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
    for event in &events {
        chains.entry(event.trace.0).or_default().push(event);
    }
    let finish = |node: usize| -> u64 {
        let Some(wait) = node_trace.get(&node) else {
            return 0;
        };
        chains
            .get(&wait.trace.0)
            .map(|chain| chain.iter().map(|e| e.end_ns()).max().unwrap_or(0))
            .unwrap_or(0)
    };

    // Walk back from the last-finishing *sink* (a node nothing depends
    // on) through each node's last-finishing parent: that chain is the
    // pipeline's critical path.
    let has_child: std::collections::HashSet<usize> = parents.values().flatten().copied().collect();
    let sink = (0..labels.len())
        .filter(|n| !has_child.contains(n))
        .max_by_key(|&n| finish(n))
        .expect("a DAG has at least one sink");
    let mut path = vec![sink];
    while let Some(parent) = parents
        .get(path.last().unwrap())
        .and_then(|ps| ps.iter().copied().max_by_key(|&p| finish(p)))
    {
        path.push(parent);
    }
    path.reverse();

    let t0 = path
        .first()
        .and_then(|n| node_trace.get(n))
        .map_or(0, |e| e.start_ns);
    println!(
        "\ncritical path ({} of {} nodes):",
        path.len(),
        labels.len()
    );
    for &node in &path {
        let Some(wait) = node_trace.get(&node) else {
            continue;
        };
        let chain = &chains[&wait.trace.0];
        let exec_ns: u64 = chain
            .iter()
            .filter(|e| !e.kind.is_instant() && !matches!(e.kind, TraceEventKind::DagWait { .. }))
            .map(|e| e.dur_ns)
            .sum();
        println!(
            "  {:<16} released +{:>8.3} ms   dag-wait {:>8.3} ms   spans {:>8.3} ms",
            labels[node],
            wait.end_ns().saturating_sub(t0) as f64 / 1e6,
            wait.dur_ns as f64 / 1e6,
            exec_ns as f64 / 1e6,
        );
    }

    println!(
        "\nreport: {} workflows, {} released, {} warm-injected, {} orphaned; conservation {}",
        report.workflows,
        report.workflow_released,
        report.warm_injected,
        report.orphaned,
        if report.conservation_holds() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    assert!(report.conservation_holds());
    assert_eq!(report.workflow_released, labels.len() as u64);
}
