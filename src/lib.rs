//! NDFT umbrella crate: re-exports the whole workspace public API.
pub use ndft_core as core;
pub use ndft_dft as dft;
pub use ndft_numerics as numerics;
pub use ndft_sched as sched;
pub use ndft_serve as serve;
pub use ndft_shmem as shmem;
pub use ndft_sim as sim;
