//! Integration tests spanning the extension modules: the iterative
//! eigensolver on real response Hamiltonians, Casida-vs-TDA ordering,
//! the core timing model against the calibration, coherence traffic
//! economics, and the scheduler extensions against the DP planner.

use ndft::dft::casida::{run_casida, solve_tda_iterative};
use ndft::dft::{build_task_graph, SiliconSystem};
use ndft::sched::anneal::{plan_anneal, AnnealOptions, Objective, PowerModel};
use ndft::sched::dynamic::{simulate_online, DynamicOptions};
use ndft::sched::{plan_chain, StaticCodeAnalyzer};
use ndft::shmem::coherence::simulate_update_cycle;
use ndft::sim::timing::{CoreModel, KernelTrace, MemPort};
use ndft::sim::{
    AccessPattern, Calibration, CpuBaselineConfig, DramModel, DramTimings, MemRequest, RowPolicy,
    SchedPolicy, SystemConfig,
};

#[test]
fn casida_bounds_tda_across_small_systems() {
    for atoms in [16usize, 32, 64] {
        let sys = SiliconSystem::new(atoms).expect("paper size");
        let res = run_casida(&sys).expect("stable silicon reference");
        for (i, (c, t)) in res.energies_ev.iter().zip(&res.tda_energies_ev).enumerate() {
            assert!(
                c <= &(t + 1e-9),
                "Si_{atoms} state {i}: casida {c} > tda {t}"
            );
        }
        assert!(res.optical_gap() > 0.0, "Si_{atoms}: gap must be positive");
    }
}

#[test]
fn iterative_solver_reproduces_casida_tda_gap() {
    // The Davidson TDA gap and run_casida's dense TDA gap are the same
    // real-gauge quantity computed by two different algorithms.
    let sys = SiliconSystem::new(32).expect("paper size");
    let dense = run_casida(&sys).expect("stable");
    let iterative = solve_tda_iterative(&sys, 1).expect("converges");
    assert!(
        (iterative[0] - dense.tda_optical_gap()).abs() < 1e-6,
        "davidson {} vs dense {}",
        iterative[0],
        dense.tda_optical_gap()
    );
}

#[test]
fn core_model_agrees_with_calibration_on_streaming_bandwidth() {
    // An NDP core streaming with its prefetcher should achieve a large
    // fraction of its configured bandwidth share — tying the per-core
    // model to the DRAM-level calibration.
    let sys = SystemConfig::paper_table3();
    let cal = Calibration::measure(&sys, &CpuBaselineConfig::paper_baseline(), 7);
    let cores_per_stack = (sys.ndp.units_per_stack * sys.ndp.cores_per_unit) as f64;
    let share = cal.ndp_stack.stream_bw / cores_per_stack;
    let port = MemPort {
        fill_latency_s: cal.ndp_stack.idle_latency,
        bandwidth_bps: share,
    };
    let mut core = CoreModel::ndp_core(&sys.ndp, port);
    let n = 65_536;
    let trace = KernelTrace::from_mix(n, 0.0, AccessPattern::Stream, 3);
    let r = core.run(&trace);
    let bytes = (r.dram_fills + r.prefetch_issued) as f64 * 64.0;
    let achieved = bytes / r.seconds(sys.ndp.clock_hz);
    assert!(
        achieved > 0.5 * share,
        "achieved {achieved:.3e} vs share {share:.3e}"
    );
    assert!(achieved <= share * 1.05, "cannot beat the configured share");
}

#[test]
fn coherence_saving_decreases_with_write_intensity() {
    let mut last = f64::INFINITY;
    for write_fraction in [0.0, 0.1, 0.5, 1.0] {
        let report = simulate_update_cycle(16, 128, 8, write_fraction);
        let saving = report.traffic_saving();
        assert!(
            saving <= last + 1e-9,
            "saving should fall with write intensity: {saving} after {last}"
        );
        last = saving;
    }
}

#[test]
fn annealer_and_online_scheduler_are_consistent_with_dp() {
    let sca = StaticCodeAnalyzer::paper_default();
    let stages = build_task_graph(&SiliconSystem::large(), 1).stages;
    let dp = plan_chain(&stages, &sca);
    // Annealed time plan = DP plan.
    let sa = plan_anneal(
        &stages,
        &sca,
        &PowerModel::paper_default(),
        Objective::Time,
        &AnnealOptions::default(),
    );
    assert!((sa.plan.total_time() - dp.total_time()).abs() <= 1e-9 * dp.total_time());
    // Online scheduler with an exact SCA reproduces the static plan.
    let opts = DynamicOptions {
        mispredict_sigma: 0.0,
        noise_sigma: 0.0,
        explore_epsilon: 0.0,
        ..DynamicOptions::default()
    };
    let r = simulate_online(&stages, &sca, &opts);
    assert_eq!(r.final_placement, dp.placement);
    assert_eq!(r.migrations, 0);
}

#[test]
fn controller_policy_ordering_holds_on_stream_traffic() {
    // Table III's controller (FR-FCFS + open page) must dominate the
    // ablation variants on the streaming traffic LR-TDDFT generates.
    let t = DramTimings::hbm2();
    let reqs: Vec<MemRequest> = (0..16_384u64)
        .map(|i| MemRequest {
            addr: i * 32,
            is_write: false,
            arrival: 0,
        })
        .collect();
    let bw = |sched, row| {
        let mut d = DramModel::with_policies(t, 8, 16, 2048, sched, row);
        d.service_batch(&reqs).bandwidth(t.clock_hz)
    };
    let paper = bw(SchedPolicy::FrFcfs, RowPolicy::OpenPage);
    let closed = bw(SchedPolicy::FrFcfs, RowPolicy::ClosedPage);
    assert!(
        paper > 1.5 * closed,
        "open {paper:.3e} vs closed {closed:.3e}"
    );
}

#[test]
fn next_gen_memory_lifts_both_sides_of_the_comparison() {
    // HBM3 > HBM2 for the stacks, DDR5 > DDR4 for the baseline — the
    // design-space direction the ablation harness reports.
    let stream = |timings: DramTimings, channels: usize, row_bytes: usize| {
        let mut d = DramModel::new(timings, channels, 16, row_bytes);
        let reqs: Vec<MemRequest> = (0..16_384u64)
            .map(|i| MemRequest {
                addr: i * timings.burst_bytes as u64,
                is_write: false,
                arrival: 0,
            })
            .collect();
        d.service_batch(&reqs).bandwidth(timings.clock_hz)
    };
    assert!(stream(DramTimings::hbm3(), 8, 2048) > 1.3 * stream(DramTimings::hbm2(), 8, 2048));
    assert!(stream(DramTimings::ddr5(), 8, 8192) > 1.5 * stream(DramTimings::ddr4(), 8, 8192));
}
