//! End-to-end anchors: every headline number of the paper's evaluation,
//! asserted as a *shape* (who wins, by roughly what factor).

use ndft::core::{fig7, fig8, other_discussion, table1};
use ndft::dft::KernelKind;
use ndft::shmem::Platform;

#[test]
fn fig7_small_system_speedups() {
    let (small, _) = fig7();
    let vs_cpu = small.ndft_over_cpu();
    let vs_gpu = small.ndft_over_gpu();
    // Paper: 1.9× over CPU, 1.6× over GPU.
    assert!(vs_cpu > 1.2 && vs_cpu < 4.0, "NDFT vs CPU small {vs_cpu}");
    assert!(vs_gpu > 0.9 && vs_gpu < 3.0, "NDFT vs GPU small {vs_gpu}");
}

#[test]
fn fig7_large_system_speedups() {
    let (_, large) = fig7();
    let vs_cpu = large.ndft_over_cpu();
    let vs_gpu = large.ndft_over_gpu();
    // Paper: 5.2× over CPU, 2.5× over GPU.
    assert!(vs_cpu > 3.5 && vs_cpu < 7.5, "NDFT vs CPU large {vs_cpu}");
    assert!(vs_gpu > 1.5 && vs_gpu < 4.0, "NDFT vs GPU large {vs_gpu}");
}

#[test]
fn fig7_fft_headline() {
    // Paper: FFT achieves 11.2× on the large system.
    let (_, large) = fig7();
    let ratio = large.cpu.kind_time(KernelKind::Fft) / large.ndft.kind_time(KernelKind::Fft);
    assert!(ratio > 8.0 && ratio < 15.0, "FFT speedup {ratio}");
}

#[test]
fn fig7_face_splitting_small_system() {
    // Paper: face-splitting product achieves 1.99× in the small system.
    let (small, _) = fig7();
    let ratio = small.cpu.kind_time(KernelKind::FaceSplitting)
        / small.ndft.kind_time(KernelKind::FaceSplitting);
    assert!(ratio > 1.5 && ratio < 6.0, "face-splitting speedup {ratio}");
}

#[test]
fn fig7_gpu_wins_gemm_moderately() {
    // Paper: GPU GEMM outperforms NDFT's by 22.2 % on the large system.
    let (_, large) = fig7();
    let gpu = large.gpu.kind_time(KernelKind::Gemm);
    let ndft = large.ndft.kind_time(KernelKind::Gemm);
    assert!(ndft > gpu, "GPU should win GEMM");
    assert!(ndft / gpu < 2.0, "but only moderately: {:.2}", ndft / gpu);
}

#[test]
fn fig7_scheduling_overhead_is_minimal() {
    // Paper: 3.8 % (small) and 4.9 % (large).
    let (small, large) = fig7();
    assert!(small.ndft.sched_overhead_fraction() < 0.10);
    assert!(large.ndft.sched_overhead_fraction() < 0.10);
}

#[test]
fn fig8_scalability_shape() {
    let rows = fig8();
    assert_eq!(rows.len(), 7);
    // Speedup grows with system size through Si_1024 …
    for w in rows.windows(2).take(5) {
        assert!(w[1].ndft_speedup > w[0].ndft_speedup);
    }
    // … peaking in the 5–6× band (paper: 5.33× max).
    let peak = rows.iter().map(|r| r.ndft_speedup).fold(0.0, f64::max);
    assert!(peak > 4.5 && peak < 7.0, "peak {peak}");
    // NDFT leads the GPU from Si_64 onward.
    for r in rows.iter().skip(2) {
        assert!(r.ndft_speedup > r.gpu_speedup, "{}", r.system);
    }
}

#[test]
fn table1_footprint_shape() {
    let rows = table1();
    let get = |sys: &str, p: Platform| {
        rows.iter()
            .find(|r| r.system == sys && r.platform == p)
            .unwrap()
            .gib()
    };
    // CPU column calibrated to the paper (1.84 / 13.8 GB).
    assert!((get("Si_64", Platform::Cpu) - 1.84).abs() < 0.05);
    assert!((get("Si_1024", Platform::Cpu) - 13.8).abs() < 0.2);
    // NDP inflation: paper +140.2 % (small), +155.7 % (large).
    let infl_small = get("Si_64", Platform::NdpReplicated) / get("Si_64", Platform::Cpu);
    let infl_large = get("Si_1024", Platform::NdpReplicated) / get("Si_1024", Platform::Cpu);
    assert!(infl_small > 2.0 && infl_small < 3.0);
    assert!(infl_large > infl_small);
    // NDP large system uses over half of memory (paper 55.15 %).
    let frac = rows
        .iter()
        .find(|r| r.system == "Si_1024" && r.platform == Platform::NdpReplicated)
        .unwrap()
        .fraction;
    assert!(frac > 0.5);
}

#[test]
fn section6a_other_discussion() {
    let (small, large) = fig7();
    let od = other_discussion(&small, &large);
    // Paper: −57.8 % footprint vs NDP; ≈1.08× CPU.
    assert!(od.footprint_reduction > 0.5 && od.footprint_reduction < 0.7);
    assert!(od.footprint_vs_cpu > 0.9 && od.footprint_vs_cpu < 1.25);
    // Global Comm comparable to the GPU baseline (paper: +3.2 %).
    assert!(od.global_comm_vs_gpu < 1.25);
}

#[test]
fn memory_bound_kernels_beat_gpu_and_grow() {
    // Paper: memory-bound kernels improve 2.1× / 5.2× over the GPU.
    let (small, large) = fig7();
    let s = small.memory_bound_speedup_over(&small.gpu);
    let l = large.memory_bound_speedup_over(&large.gpu);
    assert!(l > 2.0, "large {l}");
    assert!(l > s, "{s} → {l}");
}
