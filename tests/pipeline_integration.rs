//! Cross-crate integration: the numeric pipeline, the workload
//! descriptors that summarize it, the scheduler that places it, and the
//! shared-memory runtime it relies on — all working together.

use ndft::core::{run_ndft, run_ndft_with, MeasuredTimer, NdftOptions};
use ndft::dft::{atom_block_bytes, build_task_graph, run_lr_tddft, KernelKind, SiliconSystem};
use ndft::numerics::{face_splitting_cost, Fft3Plan};
use ndft::sched::{plan_chain, plan_exhaustive, Target};
use ndft::shmem::{CommScheme, NdftRuntime, UnitId};
use ndft::sim::SystemConfig;

#[test]
fn numeric_spectrum_is_stable_across_runs() {
    let sys = SiliconSystem::new(16).unwrap();
    let a = run_lr_tddft(&sys).unwrap();
    let b = run_lr_tddft(&sys).unwrap();
    assert_eq!(a.energies_ev, b.energies_ev, "driver must be deterministic");
    assert!(a.optical_gap() > 0.0);
}

#[test]
fn descriptor_fft_cost_matches_numeric_plan() {
    // The workload descriptor's FFT cost must equal npair × the actual
    // 3-D plan cost of the system grid (clamped byte model aside).
    let sys = SiliconSystem::new(16).unwrap();
    let graph = build_task_graph(&sys, 1);
    let fft_stage = &graph.stages_of(KernelKind::Fft)[0];
    let plan_cost = Fft3Plan::new(sys.grid()).cost();
    let npair = sys.pair_count() as u64;
    assert_eq!(fft_stage.cost.flops, plan_cost.flops * npair);
}

#[test]
fn descriptor_face_splitting_cost_matches_formula() {
    let sys = SiliconSystem::new(64).unwrap();
    let graph = build_task_graph(&sys, 1);
    let fs = &graph.stages_of(KernelKind::FaceSplitting)[0];
    let expect = face_splitting_cost(sys.pair_count(), sys.grid().len());
    assert_eq!(fs.cost.flops, expect.flops);
    assert_eq!(fs.cost.bytes_written, expect.bytes_written);
}

#[test]
fn measured_planner_matches_exhaustive_on_real_pipeline() {
    let graph = build_task_graph(&SiliconSystem::small(), 1);
    let machine = ndft::core::CpuNdpMachine::new(
        &SystemConfig::paper_table3(),
        ndft::core::calib::measured(),
        ndft::core::ModelConstants::paper_default(),
    );
    let timer = MeasuredTimer::new(machine);
    let dp = plan_chain(&graph.stages, &timer);
    let ex = plan_exhaustive(&graph.stages, &timer);
    assert!(
        (dp.total_time() - ex.total_time()).abs() <= 1e-9 * ex.total_time().max(1e-12),
        "DP {} vs exhaustive {}",
        dp.total_time(),
        ex.total_time()
    );
}

#[test]
fn ndft_placement_uses_both_sides_on_large_system() {
    let report = run_ndft(&build_task_graph(&SiliconSystem::large(), 1));
    let cpu_stages = report
        .stages
        .iter()
        .filter(|s| s.target == Some(Target::Cpu))
        .count();
    let ndp_stages = report
        .stages
        .iter()
        .filter(|s| s.target == Some(Target::Ndp))
        .count();
    assert!(
        cpu_stages >= 1,
        "compute-bound kernels should stay on the host"
    );
    assert!(ndp_stages >= 4, "memory-bound kernels should offload");
}

#[test]
fn shared_memory_gather_feeds_engine_timing() {
    // Flat comm must slow the pseudopotential stage, and only that stage.
    let graph = build_task_graph(&SiliconSystem::large(), 1);
    let hier = run_ndft_with(&graph, NdftOptions::default());
    let flat = run_ndft_with(
        &graph,
        NdftOptions {
            shared_blocks: true,
            comm_scheme: CommScheme::Flat,
        },
    );
    assert!(flat.kind_time(KernelKind::PseudoUpdate) > hier.kind_time(KernelKind::PseudoUpdate));
    assert_eq!(
        flat.kind_time(KernelKind::Fft),
        hier.kind_time(KernelKind::Fft),
        "other stages unaffected"
    );
}

#[test]
fn runtime_block_lifecycle_for_whole_system() {
    // Allocate one shared block per atom of Si_64 across stacks,
    // broadcast a few, read everywhere, free everything.
    let cfg = SystemConfig::paper_table3();
    let mut rt = NdftRuntime::new(&cfg, CommScheme::Hierarchical);
    let sys = SiliconSystem::small();
    let mut blocks = Vec::new();
    for atom in 0..sys.atoms() {
        let bl = rt.alloc_shared(atom_block_bytes(), atom % 16).unwrap();
        blocks.push(bl);
    }
    assert_eq!(rt.store().live_blocks(), 64);
    // Every stack reads every block once; hierarchical caching bounds the
    // remote ops at (blocks × 15) regardless of unit count.
    for &bl in &blocks {
        for stack in 0..16 {
            for unit in 0..2 {
                rt.read(UnitId { stack, unit }, bl, 4096).unwrap();
            }
        }
    }
    let stats = rt.stats();
    assert_eq!(stats.remote_ops, 64 * 15);
    assert!(stats.filter_rate() > 0.4);
    for bl in blocks {
        rt.free_shared(bl).unwrap();
    }
    assert_eq!(rt.store().live_blocks(), 0);
}

#[test]
fn iterations_amplify_everything_consistently() {
    let g1 = build_task_graph(&SiliconSystem::small(), 1);
    let g5 = build_task_graph(&SiliconSystem::small(), 5);
    let r1 = run_ndft(&g1);
    let r5 = run_ndft(&g5);
    assert!((r5.total() - 5.0 * r1.total()).abs() < 1e-9 * r1.total());
    assert!(
        (r5.sched_overhead_fraction() - r1.sched_overhead_fraction()).abs() < 1e-12,
        "overhead fraction is iteration-invariant"
    );
}

#[test]
fn analytic_alltoall_constant_matches_event_simulation() {
    // The CPU-NDP machine model charges all-to-alls against a 256 GB/s
    // mesh-bisection constant; the event-simulated exchange must land in
    // the same regime (same decade, factor ≤ 3).
    let cfg = SystemConfig::paper_table3();
    let r = ndft::shmem::simulate_alltoall(&cfg, 8 << 30, ndft::sim::Topology::Mesh);
    let analytic = ndft::core::ModelConstants::paper_default().ndp_bisection_bw;
    let ratio = r.effective_bandwidth / analytic;
    assert!(
        (0.33..3.0).contains(&ratio),
        "simulated {:.3e} vs analytic {:.3e} (ratio {ratio})",
        r.effective_bandwidth,
        analytic
    );
}

#[test]
fn self_consistent_scf_feeds_response_pipeline() {
    // The full physics chain: SCF density loop → orbitals → LR-TDDFT.
    let sys = SiliconSystem::new(16).unwrap();
    let nv = 4;
    let opts = ndft::dft::ScfOptions {
        bands: nv + 3,
        max_iterations: 2,
        ..Default::default()
    };
    let sc = ndft::dft::run_scf_selfconsistent(&sys, &opts, nv, 2, 0.5).unwrap();
    let gs = &sc.ground_state;
    let nr = sys.grid().len();
    let dv = sys.volume() / nr as f64;
    let s = 1.0 / dv.sqrt();
    let take = |range: std::ops::Range<usize>| {
        let mut data = Vec::new();
        for r in range.clone() {
            data.extend(gs.orbitals.row(r).iter().map(|z| z.scale(s)));
        }
        ndft::numerics::CMat::from_vec(range.len(), nr, data)
    };
    let valence = take(0..nv);
    let conduction = take(nv..nv + 3);
    let spectrum = ndft::dft::lr_tddft_from_orbitals(
        &sys,
        &valence,
        &conduction,
        &gs.energies_ev[..nv],
        &gs.energies_ev[nv..nv + 3],
    )
    .unwrap();
    assert!(spectrum.optical_gap() > 0.0);
    assert!(spectrum.hermiticity_error < 1e-8);
}

#[test]
fn umbrella_crate_reexports_work() {
    // The `ndft` facade exposes every subsystem.
    let _ = ndft::numerics::FftPlan::new(8);
    let _ = ndft::sim::SystemConfig::paper_table3();
    let _ = ndft::dft::SiliconSystem::small();
    let _ = ndft::sched::StaticCodeAnalyzer::paper_default();
    let _ = ndft::shmem::table1_rows();
    let _ = ndft::core::table1();
}
