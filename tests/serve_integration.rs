//! End-to-end test of the `ndft-serve` job engine: a mixed batch of SCF,
//! MD, and spectrum jobs through submission, batching, planner-driven
//! placement, execution, and the content-addressed result cache — plus
//! the async client surface: ticket futures, the multiplexing
//! `ClientSession`, and per-job progress streams.

use ndft::serve::{
    block_on, chrome_trace_json, join_all, race, CachePolicy, DftJob, DftService, FaultPlan,
    FederatedService, FederationConfig, JobError, JobKind, JobPayload, JobRequest, JobStage,
    NodeId, PlacementPolicy, Priority, ServeConfig, Stage, SubmitError, TenantId, TraceEventKind,
    WorkflowSpec,
};
use std::collections::HashSet;
use std::time::Duration;

fn mixed_batch() -> Vec<DftJob> {
    vec![
        DftJob::GroundState {
            atoms: 8,
            bands: 4,
            max_iterations: 4,
        },
        DftJob::GroundState {
            atoms: 16,
            bands: 4,
            max_iterations: 4,
        },
        DftJob::MdSegment {
            atoms: 64,
            steps: 8,
            temperature_k: 300.0,
            seed: 1,
        },
        DftJob::MdSegment {
            atoms: 64,
            steps: 8,
            temperature_k: 300.0,
            seed: 2,
        },
        DftJob::MdSegment {
            atoms: 128,
            steps: 8,
            temperature_k: 500.0,
            seed: 3,
        },
        DftJob::Spectrum {
            atoms: 8,
            full_casida: false,
        },
        DftJob::Spectrum {
            atoms: 16,
            full_casida: false,
        },
        DftJob::Spectrum {
            atoms: 16,
            full_casida: true,
        },
    ]
}

#[test]
fn mixed_batch_completes_with_correct_payloads() {
    let svc = DftService::start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let jobs = mixed_batch();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit(j.clone()).expect("queue has capacity"))
        .collect();
    for (job, ticket) in jobs.iter().zip(&tickets) {
        let outcome = ticket.wait().expect("job completes");
        assert_eq!(outcome.fingerprint, job.fingerprint());
        match (job.kind(), &outcome.payload) {
            (JobKind::GroundState, JobPayload::GroundState(gs)) => {
                assert!(!gs.energies_ev.is_empty());
                assert!(gs.max_residual().is_finite());
            }
            (JobKind::MdSegment, JobPayload::Md(t)) => {
                assert_eq!(t.atoms, job.atoms());
                assert_eq!(t.samples.len(), 8);
            }
            (JobKind::TdaSpectrum, JobPayload::Tda(s)) => {
                assert!(s.optical_gap() > 0.0);
            }
            (JobKind::CasidaSpectrum, JobPayload::Casida(c)) => {
                assert!(c.optical_gap() > 0.0);
            }
            (kind, payload) => panic!("kind {kind} produced mismatched payload {payload:?}"),
        }
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, jobs.len() as u64);
    assert_eq!(report.failed, 0);
    assert!(report.mean_latency_s > 0.0);
}

#[test]
fn repeated_submission_hits_the_cache() {
    let svc = DftService::start_default();
    let jobs = mixed_batch();
    // First wave executes everything.
    let first: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap())
        .collect();
    for t in &first {
        t.wait().unwrap();
    }
    // Second wave must be served from the content-addressed cache.
    for job in &jobs {
        let ticket = svc.submit(job.clone()).unwrap();
        assert!(ticket.is_done(), "cache serve resolves at submission");
        ticket.wait().unwrap();
    }
    let report = svc.shutdown();
    assert!(
        report.cache.hit_rate() > 0.0,
        "hit rate {} with {} hits / {} misses",
        report.cache.hit_rate(),
        report.cache.hits,
        report.cache.misses
    );
    assert_eq!(report.served_from_cache, jobs.len() as u64);
    assert_eq!(report.completed, 2 * jobs.len() as u64);
}

#[test]
fn planner_placement_never_loses_to_cpu_pinned_baseline() {
    let svc = DftService::start(ServeConfig {
        policy: PlacementPolicy::CostAware,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = mixed_batch()
        .into_iter()
        .map(|j| svc.submit_blocking(j).unwrap())
        .collect();
    for ticket in &tickets {
        let outcome = ticket.wait().unwrap();
        let placed = outcome.placement.modeled_time();
        let pinned = outcome.placement.cpu_pinned_time;
        assert!(
            placed <= pinned + 1e-12,
            "{}: planner {placed} vs cpu-pinned {pinned}",
            outcome.job
        );
    }
    let report = svc.shutdown();
    assert!(
        report.modeled_speedup_vs_cpu() >= 1.0,
        "aggregate speedup {}",
        report.modeled_speedup_vs_cpu()
    );
    assert!(report.modeled_ndp_busy_s > 0.0, "NDP side never used");
    assert!(report.planner_calls > 0);
}

#[test]
fn identical_jobs_in_one_wave_execute_once() {
    let svc = DftService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let job = DftJob::Spectrum {
        atoms: 16,
        full_casida: false,
    };
    let tickets: Vec<_> = (0..5)
        .map(|_| svc.submit_blocking(job.clone()).unwrap())
        .collect();
    let outcomes: Vec<_> = tickets.iter().map(|t| t.wait().unwrap()).collect();
    for pair in outcomes.windows(2) {
        assert_eq!(pair[0].fingerprint, pair[1].fingerprint);
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 5);
    assert!(
        report.served_from_cache >= 1,
        "duplicates deduped: {} cache serves",
        report.served_from_cache
    );
}

#[test]
fn invalid_jobs_are_rejected_not_queued() {
    let svc = DftService::start_default();
    let bad = DftJob::GroundState {
        atoms: 12, // not a whole number of diamond cells
        bands: 4,
        max_iterations: 4,
    };
    match svc.submit(bad) {
        Err(SubmitError::InvalidJob(_)) => {}
        other => panic!("expected InvalidJob, got {other:?}"),
    }
    let report = svc.shutdown();
    assert_eq!(report.submitted, 0);
    assert_eq!(report.failed, 0);
}

#[test]
fn shard_skew_triggers_stealing_and_no_worker_starves() {
    // Adversarial shard skew: every job shares one WorkloadClass, so
    // class-keyed routing lands the entire stream on ONE shard. Without
    // work stealing, three of the four workers would sit idle on their
    // empty home shards forever.
    let svc = DftService::start(ServeConfig {
        workers: 4,
        shards: 4,
        max_batch: 2, // small drains so the loaded shard stays stealable
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    let jobs: Vec<_> = (0..48)
        .map(|seed| DftJob::MdSegment {
            atoms: 64,
            steps: 40,
            temperature_k: 300.0,
            seed, // distinct fingerprints, one shared class
        })
        .collect();
    let shard_key = jobs[0].workload_class().shard_key();
    assert!(jobs
        .iter()
        .all(|j| j.workload_class().shard_key() == shard_key));
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap())
        .collect();
    for (job, ticket) in jobs.iter().zip(&tickets) {
        let outcome = ticket.wait().expect("job completes");
        assert_eq!(outcome.fingerprint, job.fingerprint());
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 48);
    assert_eq!(report.failed, 0);
    assert!(report.steals > 0, "skewed load must trigger steals");
    assert!(report.stolen_jobs > 0);
    // Exactly one shard ever held work...
    assert_eq!(
        report
            .shard_dispatched
            .iter()
            .filter(|&&jobs| jobs > 0)
            .count(),
        1,
        "class-keyed routing concentrates one class on one shard: {:?}",
        report.shard_dispatched
    );
    // ...yet every worker took part (stealing defeats the skew).
    assert_eq!(report.worker_dispatched.len(), 4);
    assert!(
        report.min_worker_dispatched() > 0,
        "no worker starves under skew: {:?}",
        report.worker_dispatched
    );
}

#[test]
fn single_shard_config_reproduces_old_engine() {
    // shards = 1 is the pre-sharding engine: one queue, no stealing.
    let svc = DftService::start(ServeConfig {
        workers: 3,
        shards: 1,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = mixed_batch()
        .into_iter()
        .map(|j| svc.submit_blocking(j).unwrap())
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 8);
    assert_eq!(report.steals, 0, "one shard leaves nothing to steal");
    assert_eq!(report.shard_dispatched.len(), 1);
}

#[test]
fn concurrent_batches_plan_under_contention_and_release_reservations() {
    // Many same-class batches in flight at once: workers must observe
    // each other's reservations while planning (plans_contended > 0),
    // and once everything drains the shared ClusterView must return to
    // exactly zero — no modeled busy time leaks into future decisions.
    let svc = DftService::start(ServeConfig {
        workers: 4,
        shards: 4,
        max_batch: 2, // many small concurrent batches
        queue_capacity: 64,
        load_aware: true,
        ..ServeConfig::default()
    });
    // Steps sized so each batch's execution dwarfs its planning: at any
    // moment several batches hold reservations, so later consultations
    // must observe them (plans_contended is structural, not a timing
    // accident).
    let tickets: Vec<_> = (0..32)
        .map(|seed| {
            svc.submit_blocking(DftJob::MdSegment {
                atoms: 64,
                steps: 400,
                temperature_k: 300.0,
                seed,
            })
            .unwrap()
        })
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    // Tickets resolve inside the batch loop, a hair before the batch's
    // reservation guard drops; give the release a moment.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while !svc.cluster_snapshot().is_idle() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let snapshot = svc.cluster_snapshot();
    assert!(
        snapshot.is_idle() && snapshot.inflight_batches() == 0,
        "reservations leaked: {snapshot:?}"
    );
    let report = svc.shutdown();
    assert_eq!(report.completed, 32);
    assert_eq!(report.failed, 0);
    assert!(
        report.plans_contended > 0,
        "4 workers × 16 batches never overlapped? {report}"
    );
    // Contention integrates reserved busy time; it must be consistent
    // with the counters that claim contention happened.
    assert!(report.cpu_contention_s + report.ndp_contention_s > 0.0);
    assert!(report.plans_shifted <= report.planner_calls);
}

#[test]
fn load_blind_engine_reports_zero_contention() {
    // load_aware: false reproduces the old engine: every plan is made
    // against an idle machine, so no contention is ever observed.
    let svc = DftService::start(ServeConfig {
        workers: 4,
        load_aware: false,
        ..ServeConfig::default()
    });
    let tickets: Vec<_> = (0..16)
        .map(|seed| {
            svc.submit_blocking(DftJob::MdSegment {
                atoms: 64,
                steps: 20,
                temperature_k: 300.0,
                seed,
            })
            .unwrap()
        })
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 16);
    assert_eq!(report.plans_contended, 0);
    assert_eq!(report.plans_shifted, 0);
    assert_eq!(report.cpu_contention_s, 0.0);
    assert_eq!(report.ndp_contention_s, 0.0);
}

#[test]
fn batching_reuses_plans_across_same_class_jobs() {
    // One worker + many same-class jobs queued up front ⇒ the drain
    // forms multi-job batches and the planner is consulted once per
    // batch, not once per job.
    let svc = DftService::start(ServeConfig {
        workers: 1,
        max_batch: 16,
        ..ServeConfig::default()
    });
    // Steps are sized so one execution far outlasts the submission loop:
    // while the first job runs, the remaining eleven accumulate in the
    // queue and drain as one multi-job batch.
    let tickets: Vec<_> = (0..12)
        .map(|seed| {
            svc.submit_blocking(DftJob::MdSegment {
                atoms: 64,
                steps: 100,
                temperature_k: 300.0,
                seed,
            })
            .unwrap()
        })
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 12);
    assert!(
        report.planner_calls < 12,
        "batching collapsed planner calls: {} for 12 jobs",
        report.planner_calls
    );
    assert!(report.plans_reused > 0);
}

#[test]
fn shutdown_unblocks_producer_stuck_on_full_shard_with_closed() {
    // Regression for the submit_blocking-vs-shutdown race: a producer
    // parked on a full shard while shutdown begins must observe
    // SubmitError::Closed — never hang, never panic. The single slow
    // worker guarantees the bounded queue fills, so the producer loop
    // is genuinely blocked when close() lands.
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let err = std::thread::scope(|s| {
        let producer = s.spawn(|| {
            let mut seed = 0u64;
            loop {
                let job = DftJob::MdSegment {
                    atoms: 64,
                    steps: 150,
                    temperature_k: 300.0,
                    seed,
                };
                match svc.submit_blocking(job) {
                    Ok(_) => seed += 1,
                    Err(e) => return e,
                }
            }
        });
        // Let the producer wedge against the 1-slot queue, then begin
        // shutdown from another thread.
        std::thread::sleep(Duration::from_millis(100));
        svc.close();
        producer.join().expect("producer must return, not hang")
    });
    assert_eq!(err, SubmitError::Closed);
    // Accepted work still drains cleanly after the race.
    let report = svc.shutdown();
    assert_eq!(report.failed, 0);
    assert_eq!(report.tickets_outstanding, 0);
}

#[test]
fn session_multiplexes_frontends_and_drains_in_finish_order() {
    const FRONTENDS: usize = 3;
    const PER_FRONTEND: usize = 20;
    let svc = DftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let (session, completions) = svc.session();
    std::thread::scope(|s| {
        for f in 0..FRONTENDS {
            let session = &session;
            s.spawn(move || {
                for i in 0..PER_FRONTEND {
                    // Seed collisions on purpose: some completions are
                    // cache serves resolving during submit itself.
                    let seed = ((f * PER_FRONTEND + i) % 10) as u64;
                    session
                        .submit_blocking(DftJob::MdSegment {
                            atoms: 64,
                            steps: 10,
                            temperature_k: 300.0,
                            seed,
                        })
                        .expect("submit through session");
                }
            });
        }
        // One drainer services all frontends: completions arrive in
        // finish order with unique session-scoped ids.
        let mut ids = HashSet::new();
        for _ in 0..FRONTENDS * PER_FRONTEND {
            let completion = completions
                .next_timeout(Duration::from_secs(60))
                .expect("completion before timeout");
            assert!(ids.insert(completion.id), "duplicate completion id");
            completion.result.expect("job succeeds");
        }
    });
    let total = (FRONTENDS * PER_FRONTEND) as u64;
    assert_eq!(session.submitted(), total);
    assert_eq!(session.completed(), total);
    assert_eq!(session.in_flight(), 0);
    drop(session);
    assert!(
        completions.next().is_none(),
        "stream ends once the session and its jobs are gone"
    );
    let report = svc.shutdown();
    assert_eq!(report.completed, total);
    assert_eq!(report.failed, 0);
    assert_eq!(report.tickets_outstanding, 0);
}

#[test]
fn progress_stream_reports_the_job_lifecycle() {
    let svc = DftService::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let stream = svc.progress();
    let job = DftJob::MdSegment {
        atoms: 64,
        steps: 10,
        temperature_k: 300.0,
        seed: 77,
    };
    let fp = job.fingerprint();

    // Fresh execution: every lifecycle stage streams, and Done is
    // published before the ticket resolves, so the whole story is
    // already in the ring when wait() returns.
    svc.submit(job.clone()).unwrap().wait().unwrap();
    let events = stream.drain();
    let labels: Vec<&str> = events
        .iter()
        .filter(|e| e.fingerprint == fp)
        .map(|e| e.stage.label())
        .collect();
    assert_eq!(labels, ["queued", "planned", "running", "done"]);
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "seq is monotone"
    );
    for event in &events {
        match &event.stage {
            JobStage::Planned { placement } => {
                assert!(placement.cpu_pinned_time > 0.0);
                assert_eq!(placement.cpu_load_s, 0.0, "idle engine plans unloaded");
            }
            JobStage::Done { ok, cached } => {
                assert!(*ok);
                assert!(!*cached, "first run is a fresh execution");
            }
            _ => {}
        }
    }

    // Cache hit: a single Done{cached} event, no queue/plan/run stages.
    let ticket = svc.submit(job).unwrap();
    assert!(ticket.is_done());
    let events = stream.drain();
    assert_eq!(events.len(), 1);
    assert!(matches!(
        events[0].stage,
        JobStage::Done {
            ok: true,
            cached: true
        }
    ));

    let report = svc.shutdown();
    assert_eq!(report.progress_events_dropped, 0);
    assert!(
        stream.next().is_none(),
        "closed + drained stream reports end"
    );
}

#[test]
fn report_gauges_outstanding_tickets_and_progress_drops() {
    // progress_capacity 4 cannot hold 8 jobs × ≥2 events: the ring must
    // evict oldest and count every eviction, while workers never stall.
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        max_batch: 2,
        progress_capacity: 4,
        ..ServeConfig::default()
    });
    // Publishing is subscriber-gated: hold a stream (unconsumed — the
    // worst-case slow consumer) so events actually flow into the ring.
    let _stream = svc.progress();
    assert_eq!(svc.report().tickets_outstanding, 0);
    let tickets: Vec<_> = (0..8)
        .map(|seed| {
            svc.submit(DftJob::MdSegment {
                atoms: 64,
                steps: 300,
                temperature_k: 300.0,
                seed,
            })
            .unwrap()
        })
        .collect();
    assert!(
        svc.tickets_outstanding() > 0,
        "eight heavy jobs on one worker cannot all be fulfilled yet"
    );
    for ticket in &tickets {
        ticket.wait().unwrap();
    }
    let report = svc.shutdown();
    assert_eq!(report.completed, 8);
    assert_eq!(
        report.tickets_outstanding, 0,
        "drained engine holds no tickets"
    );
    assert!(
        report.progress_events_dropped > 0,
        "tiny ring must have evicted events"
    );
}

#[test]
fn ticket_futures_drive_with_block_on_join_all_and_race() {
    let svc = DftService::start_default();
    let jobs = mixed_batch();
    // join_all: results come back in submission order, no thread per
    // ticket, one block_on drives the whole batch.
    let futures: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap().future())
        .collect();
    let results = block_on(join_all(futures));
    assert_eq!(results.len(), jobs.len());
    for (job, result) in jobs.iter().zip(&results) {
        assert_eq!(result.as_ref().unwrap().fingerprint, job.fingerprint());
    }
    // race: the winner is whichever resolves first (cache-served here,
    // so immediately); losers are dropped and deregister themselves.
    let contestants: Vec<_> = jobs
        .iter()
        .take(3)
        .map(|j| svc.submit(j.clone()).unwrap().future())
        .collect();
    let (winner, result) = block_on(race(contestants));
    assert!(winner < 3);
    result.expect("winner carries the shared outcome");
    // `await` syntax via IntoFuture.
    let ticket = svc.submit_blocking(jobs[0].clone()).unwrap();
    let outcome = block_on(async move { ticket.await }).unwrap();
    assert_eq!(outcome.fingerprint, jobs[0].fingerprint());
    let report = svc.shutdown();
    assert_eq!(report.failed, 0);
    assert_eq!(report.tickets_outstanding, 0);
}

/// A scratch cache directory unique to this test process.
fn scratch_cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ndft-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The restart scenario the persistent tier exists for: fill the cache
/// through one engine, drop it, rebuild on the same `cache_dir`, and
/// observe every resubmission served warm from disk — bit-identical
/// payloads, zero re-executions, and the `ServeReport` tier counters
/// telling that story.
#[test]
fn cache_survives_engine_restart_via_disk_tier() {
    let dir = scratch_cache_dir("restart");
    let jobs = mixed_batch();
    let config = ServeConfig {
        workers: 2,
        cache_policy: CachePolicy::CostWeighted,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Engine 1: everything executes once; every outcome is written
    // through to the write-ahead file.
    let first = DftService::start(config.clone());
    let mut first_outcomes = Vec::new();
    for job in &jobs {
        first_outcomes.push(first.submit(job.clone()).unwrap().wait().unwrap());
    }
    let report = first.shutdown();
    assert_eq!(report.completed, jobs.len() as u64);
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.cache.disk_len,
        jobs.len(),
        "one record per distinct fingerprint"
    );
    assert!(report.cache.bytes_persisted > 0);

    // Engine 2, same directory: the memory tier starts cold, but the
    // scan of the write-ahead file makes every prior result warm.
    let second = DftService::start(config);
    for (job, first_outcome) in jobs.iter().zip(&first_outcomes) {
        let ticket = second.submit(job.clone()).unwrap();
        assert!(ticket.is_done(), "disk tier serves at submission time");
        let outcome = ticket.wait().unwrap();
        assert_eq!(
            outcome.payload, first_outcome.payload,
            "restarted engine serves the bit-identical payload"
        );
    }
    let report = second.shutdown();
    assert_eq!(report.served_from_cache, jobs.len() as u64);
    assert_eq!(report.completed, jobs.len() as u64);
    assert_eq!(report.planner_calls, 0, "nothing re-executed after restart");
    assert_eq!(
        report.cache.disk_hits,
        jobs.len() as u64,
        "every first resubmission promoted from the disk tier"
    );
    assert_eq!(report.cache.misses, 0);
    assert_eq!(report.cache.len, jobs.len(), "promotions repopulate memory");
    assert!(
        report.cache.cost_retained_s > 0.0,
        "promoted entries carry their stored modeled cost"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corruption of the persistent tier must never take the engine down:
/// a clobbered write-ahead file is recovered (reset or truncated) at
/// start and the engine serves normally, re-executing what was lost.
#[test]
fn corrupt_cache_dir_recovers_and_engine_serves() {
    let dir = scratch_cache_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("results.wal"), b"not a write-ahead log at all").unwrap();
    let svc = DftService::start(ServeConfig {
        workers: 2,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    for job in mixed_batch() {
        svc.submit(job).unwrap().wait().unwrap();
    }
    let report = svc.shutdown();
    assert_eq!(report.failed, 0);
    assert_eq!(report.cache.disk_len, mixed_batch().len(), "log rebuilt");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The telemetry surface over a mixed workload: every class that ran
/// reports per-stage percentiles, the end-to-end histogram pairs with
/// the completion counters, and the snapshot serializes.
#[test]
fn telemetry_reports_per_stage_percentiles_for_mixed_classes() {
    let svc = DftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let jobs = mixed_batch();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap())
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    // The fulfill-stage sample times the fulfill call itself, so it
    // lands a hair *after* the waiter resolves; give it a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut snapshot = svc.telemetry();
    while snapshot.stage_total(Stage::Fulfill).count() < jobs.len() as u64
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
        snapshot = svc.telemetry();
    }
    // Every job's whole life landed in the end-to-end histogram.
    assert_eq!(snapshot.jobs_recorded(), jobs.len() as u64);
    assert_eq!(
        snapshot.stage_total(Stage::EndToEnd).count(),
        jobs.len() as u64
    );
    // Every queued job passes through queue-wait, execute, and fulfill
    // exactly once, so those totals agree with the job count. Plan and
    // reserve are batch-scoped — consulted once per batch, shared by
    // riders — so they are present but bounded by the job count.
    for stage in [Stage::QueueWait, Stage::Execute, Stage::Fulfill] {
        assert_eq!(
            snapshot.stage_total(stage).count(),
            jobs.len() as u64,
            "stage {stage} count"
        );
    }
    for stage in [Stage::Plan, Stage::Reserve] {
        let n = snapshot.stage_total(stage).count();
        assert!(
            n >= 1 && n <= jobs.len() as u64,
            "batch-scoped stage {stage} count {n}"
        );
    }
    let classes: HashSet<_> = jobs.iter().map(|j| j.workload_class()).collect();
    assert_eq!(snapshot.classes.len(), classes.len());
    for class in &classes {
        let cs = snapshot.class(class).expect("class that ran is reported");
        let e2e = cs.stage(Stage::EndToEnd);
        assert!(e2e.count() > 0);
        // Percentiles are ordered and bounded by the exact max.
        assert!(e2e.p50_ns() <= e2e.p90_ns());
        assert!(e2e.p90_ns() <= e2e.p99_ns());
        assert!(e2e.p99_ns() <= e2e.max_ns());
        assert!(e2e.max_ns() > 0, "a DFT job takes nonzero time");
        // The execute stage is the dominant cost, so its tail cannot
        // exceed the end-to-end tail.
        assert!(cs.stage(Stage::Execute).max_ns() <= e2e.max_ns());
    }
    assert_eq!(snapshot.trace_events_dropped, 0, "nobody subscribed");
    assert!(!snapshot.queue_high_watermarks.is_empty());
    assert!(snapshot.queue_high_watermarks.iter().any(|&w| w > 0));
    let json = snapshot.to_json();
    assert!(json.contains("\"classes\""));
    assert!(json.contains("\"end_to_end\""));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "snapshot JSON is balanced"
    );
    let report = svc.shutdown();
    assert_eq!(report.completed, jobs.len() as u64);
}

/// The seqlock'd report never lets the latency rows and the job
/// counters disagree: on a quiescent engine the per-class job counts
/// sum exactly to completed + failed, and cache serves are counted too.
#[test]
fn report_class_latency_rows_agree_with_job_counters() {
    let svc = DftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let jobs = mixed_batch();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap())
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    // Resubmit everything: cache serves count end-to-end too.
    for job in &jobs {
        svc.submit(job.clone()).unwrap().wait().unwrap();
    }
    let report = svc.report();
    let row_jobs: u64 = report.class_latency.iter().map(|r| r.jobs).sum();
    assert_eq!(
        row_jobs,
        report.completed + report.failed + report.cancelled + report.deadline_dropped,
        "latency rows and job counters must agree"
    );
    // The per-priority rows cover the same jobs, partitioned by QoS
    // class instead of workload class.
    let prio_jobs: u64 = report.priority_latency.iter().map(|r| r.jobs).sum();
    assert_eq!(prio_jobs, row_jobs, "priority rows partition the same jobs");
    assert_eq!(report.trace_events_dropped, 0, "no subscriber, no drops");
    for row in &report.class_latency {
        assert!(row.jobs > 0);
        assert!(row.p50_s <= row.p90_s + 1e-12);
        assert!(row.p90_s <= row.p99_s + 1e-12);
        assert!(row.p99_s <= row.max_s + 1e-12);
    }
    let final_report = svc.shutdown();
    assert_eq!(final_report.completed, 2 * jobs.len() as u64);
    let row_jobs: u64 = final_report.class_latency.iter().map(|r| r.jobs).sum();
    assert_eq!(row_jobs, final_report.completed);
}

/// The Chrome trace export carries one complete span chain per
/// submission — executed, deduplicated, and cache-served alike — and
/// every event serializes as a well-formed trace-viewer record.
#[test]
fn chrome_trace_export_has_one_complete_chain_per_submission() {
    let svc = DftService::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let collector = svc.trace();
    let jobs = mixed_batch();
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| svc.submit_blocking(j.clone()).unwrap())
        .collect();
    for t in &tickets {
        t.wait().unwrap();
    }
    // A duplicate wave: these resolve at submission, off the cache.
    for job in &jobs {
        svc.submit(job.clone()).unwrap().wait().unwrap();
    }
    svc.shutdown();
    let events = collector.drain();
    assert_eq!(collector.dropped(), 0, "default ring holds a small run");

    let mut fulfills_per_trace = std::collections::HashMap::new();
    for e in &events {
        if matches!(e.kind, TraceEventKind::TicketFulfill { .. }) {
            *fulfills_per_trace.entry(e.trace.0).or_insert(0u32) += 1;
        }
    }
    assert_eq!(
        fulfills_per_trace.len(),
        2 * jobs.len(),
        "one trace lane per submission, duplicates included"
    );
    assert!(
        fulfills_per_trace.values().all(|&n| n == 1),
        "every chain closes exactly once"
    );
    let cached = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::TicketFulfill { cached: true, .. }))
        .count();
    assert!(
        cached >= jobs.len(),
        "the whole second wave was cache-served"
    );

    let json = chrome_trace_json(&events);
    assert!(json.starts_with('['), "array-flavor Chrome trace");
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(
        json.matches("\"ph\"").count(),
        events.len(),
        "one trace-viewer record per event"
    );
    let complete_spans = events.iter().filter(|e| !e.kind.is_instant()).count();
    assert_eq!(json.matches("\"ph\": \"X\"").count(), complete_spans);
    assert_eq!(
        json.matches("\"ph\": \"i\"").count(),
        events.len() - complete_spans
    );
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "trace JSON is balanced"
    );
}

/// A rejected submission still closes its trace chain: the lane shows
/// the admission and a failed fulfill, nothing else, and no end-to-end
/// latency is recorded for a job that was never admitted.
#[test]
fn rejected_submission_closes_its_trace_chain_without_latency() {
    // One slow worker against a 1-slot queue: a non-blocking burst is
    // guaranteed to hit QueueFull.
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        queue_capacity: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let collector = svc.trace();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    let mut seed = 0u64;
    while rejected == 0 {
        let job = DftJob::MdSegment {
            atoms: 64,
            steps: 200,
            temperature_k: 300.0,
            seed,
        };
        seed += 1;
        match svc.submit(job) {
            Ok(t) => accepted.push(t),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    }
    for t in &accepted {
        t.wait().unwrap();
    }
    // The end-to-end histogram pairs with completed + failed — the
    // rejected job is in neither, so it must not be in the histogram.
    let snapshot = svc.telemetry();
    assert_eq!(snapshot.jobs_recorded(), accepted.len() as u64);
    let report = svc.shutdown();
    assert_eq!(report.completed, accepted.len() as u64);
    assert_eq!(report.rejected, rejected);
    assert_eq!(report.failed, 0, "a rejection is not a failure");

    let events = collector.drain();
    let mut per_trace: std::collections::HashMap<u64, Vec<_>> = std::collections::HashMap::new();
    for e in &events {
        per_trace.entry(e.trace.0).or_default().push(e);
    }
    let rejected_lanes: Vec<_> = per_trace
        .values()
        .filter(|evs| {
            evs.iter()
                .any(|e| matches!(e.kind, TraceEventKind::TicketFulfill { ok: false, .. }))
        })
        .collect();
    assert_eq!(rejected_lanes.len(), rejected as usize);
    for lane in &rejected_lanes {
        assert_eq!(lane.len(), 2, "a rejected lane is enqueue + failed fulfill");
        assert!(matches!(lane[0].kind, TraceEventKind::Enqueue { .. }));
        assert!(matches!(
            lane[1].kind,
            TraceEventKind::TicketFulfill {
                ok: false,
                cached: false
            }
        ));
    }
}

/// A long job wedges the single worker; everything cancelled behind it
/// resolves `Cancelled` immediately, never executes, streams a terminal
/// `cancelled` stage, closes its trace chain with a cancellation
/// marker, and the report's conservation invariant still balances.
#[test]
fn cancelled_jobs_resolve_cancelled_and_never_execute() {
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        max_batch: 1,
        ..ServeConfig::default()
    });
    let stream = svc.progress();
    let collector = svc.trace();
    // ~100 ms of wall-clock MD keeps the worker busy while the
    // cancellations land on still-queued jobs.
    let blocker = svc
        .submit(DftJob::MdSegment {
            atoms: 64,
            steps: 100_000,
            temperature_k: 300.0,
            seed: 1000,
        })
        .unwrap();
    let victims: Vec<_> = (0..4)
        .map(|seed| {
            svc.submit(DftJob::MdSegment {
                atoms: 64,
                steps: 2,
                temperature_k: 300.0,
                seed,
            })
            .unwrap()
        })
        .collect();
    for v in &victims {
        assert!(v.cancel(), "first cancel resolves the ticket");
        assert!(!v.cancel(), "second cancel is a no-op");
        assert_eq!(v.wait().unwrap_err(), JobError::Cancelled);
    }
    blocker.wait().unwrap();
    let report = svc.shutdown();
    assert_eq!(report.completed, 1, "only the blocker executed");
    assert_eq!(report.cancelled, 4);
    assert_eq!(report.failed, 0, "a cancellation is not a failure");
    assert_eq!(report.tickets_outstanding, 0);
    assert!(
        report.conservation_holds(),
        "submitted {} != completed {} + failed {} + cancelled {} + deadline_dropped {}",
        report.submitted,
        report.completed,
        report.failed,
        report.cancelled,
        report.deadline_dropped
    );
    // Each victim's streamed lifecycle is queued → cancelled.
    let events = stream.drain();
    for v in &victims {
        let labels: Vec<&str> = events
            .iter()
            .filter(|e| e.fingerprint == v.fingerprint())
            .map(|e| e.stage.label())
            .collect();
        assert_eq!(labels, ["queued", "cancelled"]);
    }
    // Each victim's trace lane opens with its enqueue and closes with
    // the cancellation marker and a failed fulfill; it may also carry
    // queue-wait/batch-form spans (the entry did wait and was popped),
    // but never any execution events.
    let traces = collector.drain();
    for v in &victims {
        let kinds: Vec<_> = traces
            .iter()
            .filter(|e| e.fingerprint == v.fingerprint())
            .map(|e| &e.kind)
            .collect();
        assert!(matches!(kinds[0], TraceEventKind::Enqueue { .. }));
        assert!(matches!(kinds[kinds.len() - 2], TraceEventKind::Cancelled));
        assert!(matches!(
            kinds[kinds.len() - 1],
            TraceEventKind::TicketFulfill {
                ok: false,
                cached: false
            }
        ));
        assert!(
            kinds.iter().all(|k| !matches!(
                k,
                TraceEventKind::PlannerConsult
                    | TraceEventKind::Numerics { .. }
                    | TraceEventKind::CacheHit { .. }
                    | TraceEventKind::CacheStore
            )),
            "a cancelled job must never execute: {kinds:?}"
        );
    }
}

/// Deadline admission control refuses a job whose modeled finish time
/// cannot fit its deadline — before a ticket, a trace lane, or a queue
/// slot is ever allocated.
#[test]
fn impossible_deadline_is_denied_at_admission() {
    let svc = DftService::start_default();
    let job = DftJob::MdSegment {
        atoms: 64,
        steps: 10,
        temperature_k: 300.0,
        seed: 1,
    };
    // No modeled run fits a nanosecond, so the denial is deterministic.
    let request = JobRequest::new(job).deadline(Duration::from_nanos(1));
    match svc.submit(request) {
        Err(SubmitError::AdmissionDenied {
            modeled_finish_s,
            deadline_s,
        }) => {
            assert!(modeled_finish_s > deadline_s);
            assert!(modeled_finish_s > 0.0);
            assert!(deadline_s > 0.0 && deadline_s < 1e-6);
        }
        other => panic!("expected AdmissionDenied, got {other:?}"),
    }
    let report = svc.shutdown();
    assert_eq!(report.admission_denied, 1);
    assert_eq!(report.submitted, 0, "denied jobs are never submitted");
    assert!(report.conservation_holds());
}

/// The per-tenant in-flight quota: a tenant at its cap is refused with
/// `QuotaExceeded` while other tenants keep submitting, and completed
/// jobs release their slots.
#[test]
fn tenant_quota_bounds_in_flight_jobs_per_tenant() {
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        max_batch: 1,
        tenant_quota: Some(2),
        ..ServeConfig::default()
    });
    let greedy = TenantId(7);
    let long_md = |seed| DftJob::MdSegment {
        atoms: 64,
        steps: 50_000,
        temperature_k: 300.0,
        seed,
    };
    let first = svc
        .submit(JobRequest::new(long_md(1)).tenant(greedy))
        .unwrap();
    let second = svc
        .submit(JobRequest::new(long_md(2)).tenant(greedy))
        .unwrap();
    match svc.submit(JobRequest::new(long_md(3)).tenant(greedy)) {
        Err(SubmitError::QuotaExceeded { tenant }) => assert_eq!(tenant, greedy),
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Another tenant is unaffected by the greedy one's cap.
    let other = svc
        .submit(JobRequest::new(long_md(4)).tenant(TenantId(8)))
        .unwrap();
    first.wait().unwrap();
    second.wait().unwrap();
    // Completion releases the slots; the slot frees when the worker
    // drops the queue entry, a hair after the ticket resolves.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let readmitted = loop {
        match svc.submit(JobRequest::new(long_md(5)).tenant(greedy)) {
            Ok(t) => break t,
            Err(SubmitError::QuotaExceeded { .. }) => {
                assert!(std::time::Instant::now() < deadline, "slots never released");
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("unexpected submit error {e:?}"),
        }
    };
    readmitted.wait().unwrap();
    other.wait().unwrap();
    let report = svc.shutdown();
    assert_eq!(report.completed, 4);
    assert_eq!(report.admission_denied, 1, "one quota refusal");
    assert!(report.conservation_holds());
}

/// Interactive work overtakes a queued bulk backlog: with QoS on, an
/// interactive job submitted behind a wall of bulk MD jobs is served
/// before the backlog drains; with QoS off the same submission order is
/// strict FIFO. Also proves the bulk lane is never starved.
#[test]
fn interactive_jobs_overtake_bulk_backlog_under_qos() {
    let svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        max_batch: 1,
        queue_capacity: 64,
        ..ServeConfig::default()
    });
    // A wall-clock blocker so the backlog below queues before any of it
    // is dispatched.
    let blocker = svc
        .submit(DftJob::MdSegment {
            atoms: 64,
            steps: 100_000,
            temperature_k: 300.0,
            seed: 999,
        })
        .unwrap();
    let bulk: Vec<_> = (0..8)
        .map(|seed| {
            svc.submit(
                JobRequest::new(DftJob::MdSegment {
                    atoms: 64,
                    steps: 5_000,
                    temperature_k: 300.0,
                    seed,
                })
                .priority(Priority::Bulk),
            )
            .unwrap()
        })
        .collect();
    let interactive = svc
        .submit(
            JobRequest::new(DftJob::MdSegment {
                atoms: 64,
                steps: 5_000,
                temperature_k: 300.0,
                seed: 100,
            })
            .priority(Priority::Interactive),
        )
        .unwrap();
    interactive.wait().unwrap();
    // The moment the interactive job finished, the 8-deep bulk backlog
    // cannot all have run on the single worker: it jumped the line.
    let bulk_done = bulk.iter().filter(|t| t.is_done()).count();
    assert!(
        bulk_done < 8,
        "interactive waited out the whole bulk backlog: {bulk_done}/8 done first"
    );
    for t in &bulk {
        t.wait().unwrap();
    }
    blocker.wait().unwrap();
    let report = svc.shutdown();
    assert_eq!(report.completed, 10);
    assert_eq!(report.failed, 0);
    assert!(report.conservation_holds());
    // Every class shows up in the per-priority latency rows.
    let jobs_by_priority: Vec<(Priority, u64)> = report
        .priority_latency
        .iter()
        .map(|r| (r.priority, r.jobs))
        .collect();
    assert_eq!(
        jobs_by_priority,
        vec![
            (Priority::Interactive, 1),
            (Priority::Standard, 1),
            (Priority::Bulk, 8)
        ]
    );
}

// ---------------------------------------------------------------------
// Federated serving: consistent-hash routing + fault-injected failover.
// ---------------------------------------------------------------------

fn fed_config(replicas: usize) -> FederationConfig {
    FederationConfig {
        replicas,
        engine: ServeConfig {
            workers: 1,
            shards: 1,
            ..ServeConfig::default()
        },
        ..FederationConfig::default()
    }
}

/// A `steps`-step MD job whose fingerprint homes on `replica` under the
/// federation's current ring (probed via `home_of`, which never ticks
/// the fault plan).
fn homed_md(fed: &FederatedService, replica: usize, steps: usize, seed0: u64) -> DftJob {
    (seed0..)
        .map(|seed| DftJob::MdSegment {
            atoms: 64,
            steps,
            temperature_k: 300.0,
            seed,
        })
        .find(|j| fed.home_of(j).unwrap() == replica)
        .unwrap()
}

/// The headline failover scenario: a seeded [`FaultPlan`] kills one of
/// four replicas in the middle of a submission flood, and every job
/// still resolves exactly once — the killed replica's queued jobs are
/// replayed onto the surviving ring (with their QoS metadata intact,
/// observable as interactive-priority executions on the survivors) and
/// the federated conservation invariant closes the books.
#[test]
fn federated_kill_mid_flood_resolves_every_job_exactly_once() {
    let mut config = fed_config(4);
    // Tick 1 is the wedge blocker; the flood occupies ticks 2..=61. The
    // kill fires on the victim at tick 30 — mid-flood by construction.
    config.fault_plan = FaultPlan::new().kill_at(30, 0);
    let fed = FederatedService::start(config);
    let victim = 0;

    // Wedge the victim: a ~600 ms blocker pins its single worker, so
    // every victim-homed flood job is still queued when the kill lands.
    let blocker = fed
        .submit_blocking(homed_md(&fed, victim, 400_000, 1 << 40))
        .unwrap();
    while fed.replica_queue_depth(victim) != Some(0) {
        std::thread::yield_now();
    }

    // Ten victim-homed interactive jobs go in first (ticks 2..=11, all
    // wedged behind the blocker), then a mixed flood of fast jobs.
    let mut tickets = Vec::new();
    for i in 0..10u64 {
        let job = homed_md(&fed, victim, 50, (1 << 41) + i * (1 << 20));
        let request = JobRequest::new(job)
            .priority(Priority::Interactive)
            .deadline(Duration::from_secs(1_000_000))
            .tenant(TenantId(9));
        tickets.push(fed.submit_blocking(request).unwrap());
    }
    for seed in 0..50u64 {
        let job = DftJob::MdSegment {
            atoms: 64,
            steps: 50,
            temperature_k: 300.0,
            seed,
        };
        tickets.push(fed.submit_blocking(job).unwrap());
    }
    assert!(!fed.is_live(victim), "fault plan fired mid-flood");

    // Exactly-once at the result layer: every client ticket resolves Ok,
    // including the ten jobs that died with the victim's queue.
    blocker
        .wait()
        .expect("in-flight blocker finishes during kill");
    for t in &tickets {
        t.wait().expect("every flooded job completes");
    }

    let report = fed.shutdown();
    assert_eq!(report.kills, 1);
    assert_eq!(report.live, 3);
    assert_eq!(report.submitted, 61);
    assert_eq!(report.completed, 61);
    assert!(report.conservation_holds(), "federated conservation");
    assert!(
        report.engines.conservation_holds(),
        "engine-level conservation"
    );
    assert!(
        report.replayed >= 10,
        "all ten wedged interactive jobs replayed (got {})",
        report.replayed
    );
    // Replay preserved the QoS metadata: the interactive jobs died
    // queued on the victim, yet the survivors' engine reports show all
    // ten accounted at interactive priority — the replayed submissions
    // carried their priority class across the failover.
    let survivor_interactive: u64 = report
        .per_replica
        .iter()
        .enumerate()
        .filter(|&(replica, _)| replica != victim)
        .flat_map(|(_, r)| r.priority_latency.iter())
        .filter(|row| row.priority == Priority::Interactive)
        .map(|row| row.jobs)
        .sum();
    assert_eq!(
        survivor_interactive, 10,
        "replayed jobs kept their priority"
    );
}

/// Regression: cancelling a job that a replica kill would otherwise
/// replay must tombstone it in the routing log — replay can never
/// resurrect a cancelled job.
#[test]
fn federated_cancel_tombstones_the_routing_entry_against_replay() {
    let fed = FederatedService::start(fed_config(2));
    let victim = fed
        .home_of(&DftJob::MdSegment {
            atoms: 64,
            steps: 1,
            temperature_k: 300.0,
            seed: 0,
        })
        .unwrap();
    let blocker = fed
        .submit_blocking(homed_md(&fed, victim, 300_000, 1 << 50))
        .unwrap();
    while fed.replica_queue_depth(victim) != Some(0) {
        std::thread::yield_now();
    }
    // Queued behind the blocker, then cancelled before the kill.
    let doomed = fed
        .submit_blocking(homed_md(&fed, victim, 60, 1 << 51))
        .unwrap();
    assert!(!doomed.is_done());
    assert!(doomed.cancel(), "cancel wins while the job is queued");
    assert!(matches!(doomed.wait(), Err(JobError::Cancelled)));

    fed.kill_replica(victim).unwrap();
    assert_eq!(
        fed.tombstoned_replays(),
        1,
        "the cancelled entry was dropped at replay time"
    );
    assert!(
        fed.replayed_fingerprints().is_empty(),
        "nothing was resurrected"
    );
    assert!(matches!(doomed.wait(), Err(JobError::Cancelled)));

    blocker.wait().unwrap();
    let report = fed.shutdown();
    assert_eq!(report.submitted, 2);
    assert_eq!(report.completed, 1);
    assert_eq!(report.cancelled, 1);
    assert_eq!(report.replayed, 0);
    assert_eq!(report.tombstoned_replays, 1);
    assert!(report.conservation_holds());
}

/// A revived replica rejoins the ring with its disk tier warm: it
/// reopens the same per-replica cache directory, so results it
/// persisted before dying are served from disk — not re-executed —
/// after the restart.
#[test]
fn federated_revive_rejoins_with_warm_disk_tier() {
    let dir = scratch_cache_dir("fed-warm");
    let mut config = fed_config(2);
    config.engine.cache_dir = Some(dir.clone());
    let fed = FederatedService::start(config);
    let victim = fed
        .home_of(&DftJob::MdSegment {
            atoms: 64,
            steps: 1,
            temperature_k: 300.0,
            seed: 0,
        })
        .unwrap();
    let jobs: Vec<DftJob> = (0..4)
        .map(|i| homed_md(&fed, victim, 40 + i, (1 << 52) + i as u64 * (1 << 20)))
        .collect();
    for job in &jobs {
        fed.submit_blocking(job.clone()).unwrap().wait().unwrap();
    }

    fed.kill_replica(victim).unwrap();
    assert!(fed.revive_replica(victim));
    assert!(fed.is_live(victim));

    // Same ring membership ⇒ same homes: the resubmissions route back to
    // the revived victim and are served from its write-ahead log at
    // admission, without touching the numerics.
    for job in &jobs {
        assert_eq!(fed.home_of(job), Some(victim));
        let ticket = fed.submit_blocking(job.clone()).unwrap();
        assert!(ticket.is_done(), "warm disk tier serves at admission");
        ticket.wait().unwrap();
    }

    let report = fed.shutdown();
    assert_eq!(report.submitted, 8);
    assert_eq!(report.completed, 8);
    assert!(report.conservation_holds());
    assert!(
        report.per_replica[victim].cache.disk_hits >= 4,
        "revived incarnation served the resubmissions from disk (got {})",
        report.per_replica[victim].cache.disk_hits
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The headline workflow scenario: one SCF ground state fans out into
/// three self-consistent refinements — each warm-seeded with the
/// parent's outcome — which reduce into a single band structure. The
/// whole graph goes through `submit_workflow` as one spec; the
/// coordinator releases each node the moment its last parent fulfills,
/// and the extended conservation invariant closes the engine's books.
#[test]
fn workflow_fan_out_reduce_completes_with_warm_seeding() {
    let svc = DftService::start(ServeConfig {
        workers: 2,
        shards: 2,
        ..ServeConfig::default()
    });
    let mut spec = WorkflowSpec::new();
    let scf = spec.add_node(DftJob::GroundState {
        atoms: 8,
        bands: 4,
        max_iterations: 6,
    });
    let sweeps: Vec<NodeId> = (0..3)
        .map(|k| {
            spec.add_node(DftJob::ScfSelfConsistent {
                atoms: 8,
                bands: 4,
                max_iterations: 6,
                occupied: 2,
                cycles: 2 + k,
                alpha: 0.4,
            })
        })
        .collect();
    let band = spec.add_node(DftJob::BandStructure {
        atoms: 8,
        segments: 3,
        n_bands: 4,
        scissor_ev: 0.9,
    });
    for &sweep in &sweeps {
        spec.add_edge(scf, sweep);
        spec.add_edge(sweep, band);
    }

    let workflow = svc.submit_workflow(spec).unwrap();
    let results = workflow.wait_all();
    assert_eq!(results.len(), 5);
    for result in &results {
        result.as_ref().expect("every node completes");
    }
    let sweep_headline = results[sweeps[0].index()]
        .as_ref()
        .unwrap()
        .payload
        .headline();

    let report = svc.shutdown();
    assert_eq!(report.workflows, 1);
    assert_eq!(report.workflow_released, 5);
    assert_eq!(report.orphaned, 0);
    assert_eq!(
        report.warm_injected, 3,
        "every sweep was seeded with the SCF parent's outcome"
    );
    assert!(report.conservation_holds(), "extended conservation");

    // Warm seeding is result-preserving: the same refinement run cold
    // on a fresh engine produces the bit-identical headline.
    let cold_svc = DftService::start(ServeConfig {
        workers: 1,
        shards: 1,
        ..ServeConfig::default()
    });
    let cold = cold_svc
        .submit(DftJob::ScfSelfConsistent {
            atoms: 8,
            bands: 4,
            max_iterations: 6,
            occupied: 2,
            cycles: 2,
            alpha: 0.4,
        })
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        cold.payload.headline().to_bits(),
        sweep_headline.to_bits(),
        "warm-seeded refinement is bit-identical to the cold path"
    );
    assert!(cold_svc.shutdown().conservation_holds());
}

/// A replica kill mid-workflow must not break dependency state: the
/// root of a chain dies queued on the victim, is replayed onto the
/// survivor, and its children — still held by the coordinator — are
/// released only after the replayed root completes. Every node ticket
/// resolves exactly once and federated conservation closes the books.
#[test]
fn federated_workflow_survives_replica_kill_with_dependencies_intact() {
    let fed = FederatedService::start(fed_config(2));

    // Wedge one replica with a long blocker, then build a chain whose
    // root homes on it: root → mid → leaf. The root dies queued.
    let root_job = homed_md(&fed, 0, 60, 1 << 44);
    let victim = 0;
    let blocker = fed
        .submit_blocking(homed_md(&fed, victim, 300_000, 1 << 45))
        .unwrap();
    while fed.replica_queue_depth(victim) != Some(0) {
        std::thread::yield_now();
    }

    let mut spec = WorkflowSpec::new();
    let root = spec.add_node(root_job);
    let mid = spec.add_node(DftJob::MdSegment {
        atoms: 64,
        steps: 30,
        temperature_k: 300.0,
        seed: 1 << 46,
    });
    let leaf = spec.add_node(DftJob::Spectrum {
        atoms: 16,
        full_casida: false,
    });
    spec.add_edge(root, mid);
    spec.add_edge(mid, leaf);
    let workflow = fed.submit_workflow(spec).unwrap();
    assert!(
        !workflow.node(root).is_done(),
        "root is wedged behind the blocker"
    );
    assert!(!workflow.node(mid).is_done(), "mid is coordinator-held");

    // Federated releases hop to a detached thread; wait until the root
    // has actually landed in the victim's queue before killing it, so
    // the kill provably strands a queued workflow node.
    while fed.replica_queue_depth(victim) != Some(1) {
        std::thread::yield_now();
    }

    fed.kill_replica(victim).unwrap();
    blocker.wait().expect("in-flight blocker drains on kill");

    let results = workflow.wait_all();
    for result in &results {
        result
            .as_ref()
            .expect("every node completes after failover");
    }

    let report = fed.shutdown();
    assert!(report.replayed >= 1, "the wedged root was replayed");
    assert_eq!(report.workflows, 1);
    assert_eq!(report.workflow_released, 3);
    assert_eq!(report.orphaned, 0);
    assert!(report.conservation_holds(), "federated conservation");
    assert!(
        report.engines.conservation_holds(),
        "engine-level conservation"
    );
}
