//! Property-based tests over the cross-crate invariants.

use ndft::dft::{
    alltoall_volume, build_task_graph, footprint_bytes, ProcessTopology, PseudoLayout,
    SiliconSystem,
};
use ndft::sched::{plan_chain, plan_greedy, plan_pinned, StaticCodeAnalyzer, Target};
use ndft::sim::{MeshNoc, SystemConfig};
use proptest::prelude::*;

/// Valid paper-style atom counts (multiples of 8, bounded).
fn atom_count() -> impl Strategy<Value = usize> {
    (1usize..=64).prop_map(|cells| cells * 8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn task_graph_costs_are_positive_and_monotonic(atoms in atom_count()) {
        let small = build_task_graph(&SiliconSystem::new(atoms).unwrap(), 1);
        let bigger = build_task_graph(&SiliconSystem::new(atoms * 2).unwrap(), 1);
        let a = small.total_cost();
        let b = bigger.total_cost();
        prop_assert!(a.flops > 0 && a.bytes_read > 0);
        prop_assert!(b.flops > a.flops, "flops must grow with system size");
        prop_assert!(b.bytes_read > a.bytes_read);
    }

    #[test]
    fn cost_aware_plan_never_loses_to_baselines(atoms in atom_count()) {
        let graph = build_task_graph(&SiliconSystem::new(atoms).unwrap(), 1);
        let sca = StaticCodeAnalyzer::paper_default();
        let dp = plan_chain(&graph.stages, &sca).total_time();
        prop_assert!(dp <= plan_greedy(&graph.stages, &sca).total_time() + 1e-12);
        prop_assert!(dp <= plan_pinned(&graph.stages, Target::Cpu, &sca).total_time() + 1e-12);
        prop_assert!(dp <= plan_pinned(&graph.stages, Target::Ndp, &sca).total_time() + 1e-12);
    }

    #[test]
    fn footprints_grow_with_atoms_and_processes(
        atoms in atom_count(),
        procs in 1usize..64,
    ) {
        let sys = SiliconSystem::new(atoms).unwrap();
        let small = footprint_bytes(
            &sys,
            PseudoLayout::Replicated { processes: procs, staging_overhead_ppm: 0 },
        );
        let more_procs = footprint_bytes(
            &sys,
            PseudoLayout::Replicated { processes: procs + 1, staging_overhead_ppm: 0 },
        );
        prop_assert!(more_procs > small);
        let bigger_sys = SiliconSystem::new(atoms * 2).unwrap();
        let more_atoms = footprint_bytes(
            &bigger_sys,
            PseudoLayout::Replicated { processes: procs, staging_overhead_ppm: 0 },
        );
        prop_assert!(more_atoms > small);
    }

    #[test]
    fn shared_block_layout_never_exceeds_replicated_per_stack(atoms in atom_count()) {
        let sys = SiliconSystem::new(atoms).unwrap();
        let replicated = footprint_bytes(
            &sys,
            PseudoLayout::Replicated { processes: 16, staging_overhead_ppm: 380 },
        );
        let shared = footprint_bytes(
            &sys,
            PseudoLayout::SharedBlock { domains: 16, processes: 256, halo_angstrom: 4.9 },
        );
        prop_assert!(shared <= replicated, "shared {shared} vs replicated {replicated}");
    }

    #[test]
    fn alltoall_volumes_always_partition(
        volume in 1u64..1_000_000_000,
        domains in 1usize..16,
        ppd in 1usize..16,
    ) {
        let v = alltoall_volume(volume, ProcessTopology::new(domains, ppd));
        prop_assert_eq!(v.intra_domain + v.inter_domain, v.total);
        prop_assert!(v.remote_fraction() >= 0.0 && v.remote_fraction() <= 1.0);
    }

    #[test]
    fn noc_transfers_respect_triangle_inequality(
        from in 0usize..16,
        to in 0usize..16,
        bytes in 1u64..1_000_000,
    ) {
        let mut noc = MeshNoc::new(SystemConfig::paper_table3().mesh);
        let direct = noc.transfer(from, to, bytes, 0).latency();
        // A fresh NoC: going via an intermediate stack can never be faster.
        let mid = (from + to) / 2;
        let mut noc2 = MeshNoc::new(SystemConfig::paper_table3().mesh);
        let leg1 = noc2.transfer(from, mid, bytes, 0);
        let leg2 = noc2.transfer(mid, to, bytes, leg1.done);
        prop_assert!(leg2.done >= direct, "two-leg {} vs direct {}", leg2.done, direct);
    }

    #[test]
    fn band_windows_fit_occupation(atoms in atom_count()) {
        let sys = SiliconSystem::new(atoms).unwrap();
        prop_assert!(sys.valence_window() <= sys.occupied_bands());
        prop_assert!(sys.pair_count() >= 12);
        prop_assert!(sys.gsphere_len() <= sys.grid().len());
    }
}
