//! Offline stub of `criterion`.
//!
//! Keeps the workspace's Criterion benches compiling and runnable without
//! the real crate: each `Bencher::iter` call runs the closure for a small
//! fixed number of timed iterations and prints the mean. No statistics,
//! no HTML reports — `cargo bench` output is a plain table.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn run_one(scope: &str, label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iters: 3,
        mean_ns: 0.0,
    };
    f(&mut b);
    let name = if scope.is_empty() {
        label.to_string()
    } else {
        format!("{scope}/{label}")
    };
    println!("bench {name:<48} {:>12.0} ns/iter", b.mean_ns);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&self.name, &id.label, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&self.name, &id.label, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one("", name, |b| f(b));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
