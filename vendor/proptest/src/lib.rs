//! Offline stub of `proptest`.
//!
//! Runs each property as N deterministic random cases (seeded from the
//! test name) with **no shrinking** — a failing case panics with the
//! drawn values still visible in the assertion message. Covers exactly
//! the strategy surface the workspace tests use: ranges, tuples, `Just`,
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`, and
//! `prop::sample::select`.

pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; the stub trims it since debug-mode
            // numerics dominate test wall-clock.
            ProptestConfig { cases: 32 }
        }
    }
}

/// Deterministic case generator (SplitMix64, seeded per test).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; `proptest!` derives the seed from the test name.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// FNV-1a over the test name — a stable per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty choice");
        self.next_u64() % bound
    }
}

pub mod strategy {
    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Value generator consumed by the `proptest!` runner.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Retries generation until `f` accepts (bounded; panics after
        /// 1000 rejections like the real crate's global rejection cap).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span)) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.below(span + 1)) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i64, i32, i16, i8, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// Marker for `any::<T>()` support on a handful of primitives.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! any_strategy {
        ($($t:ty => $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let f: fn(&mut TestRng) -> $t = $gen;
                    f(rng)
                }
            }
        )*};
    }

    any_strategy! {
        bool => |r| r.next_u64() & 1 == 1;
        u8 => |r| r.next_u64() as u8;
        u16 => |r| r.next_u64() as u16;
        u32 => |r| r.next_u64() as u32;
        u64 => |r| r.next_u64();
        usize => |r| r.next_u64() as usize;
        f64 => |r| r.unit_f64() * 2e6 - 1e6;
    }
}

/// `proptest::arbitrary` stand-in: `any::<T>()` for primitives.
pub mod arbitrary {
    use super::strategy::Any;
    use std::marker::PhantomData;

    /// Uniform strategy over the whole domain of `T` (primitives only).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec` stand-in.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// `prop::sample::select` stand-in.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len() as u64) as usize;
            self.options[k].clone()
        }
    }
}

/// Assert inside a property; panics (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body runs
/// for `cases` deterministic random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::new($crate::TestRng::seed_from_name(stringify!($name)));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = usize> {
        (0usize..100).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_strategy_applies(n in even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0usize..8, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 8));
        }

        #[test]
        fn oneof_and_select(pick in prop_oneof![Just(1usize), Just(2), Just(3)],
                            sel in prop::sample::select(vec![10usize, 20, 30])) {
            prop_assert!((1..=3).contains(&pick));
            prop_assert!(sel % 10 == 0);
        }

        #[test]
        fn tuple_patterns((a, b) in (0usize..4, 4usize..8)) {
            prop_assert!(a < 4 && (4..8).contains(&b));
        }
    }
}
