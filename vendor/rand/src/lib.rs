//! Offline stub of `rand` (0.8-style API surface).
//!
//! Implements exactly what the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool, gen_ratio}` — over a SplitMix64
//! generator. Deterministic per seed, which is all the simulation and MD
//! code relies on (they seed explicitly for reproducibility).

use std::ops::{Range, RangeInclusive};

/// Core RNG: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (`rand::SeedableRng` stand-in).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (`Standard`-distribution stand-in).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i64, i32, i16, i8, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing RNG methods, blanket-implemented over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn ratio_is_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((1500..3500).contains(&hits), "hits {hits}");
    }
}
