//! Offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report types but
//! never serializes them (no `serde_json`/`bincode` in the tree), so this
//! stub keeps the derive surface compiling without the real crate: the
//! traits are markers with blanket impls, and the derive macros expand to
//! nothing. Swapping in real serde later is a one-line Cargo.toml change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented owned-deserialization marker.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}
