//! Offline stub of `serde_derive`.
//!
//! The build environment has no registry access, and nothing in the
//! workspace actually serializes (there is no `serde_json` in the tree) —
//! the `#[derive(Serialize, Deserialize)]` attributes only declare intent.
//! The stub `serde` crate provides blanket impls of both traits, so the
//! derive macros here can expand to nothing at all.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
